#include "accel/h264.hh"

#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::LatencyKind;
using rtl::lit;
using rtl::State;

H264Fields
h264Fields(const rtl::Design &design)
{
    H264Fields f;
    f.mbType = design.fieldIndex("mb_type");
    f.coeffCount = design.fieldIndex("coeff_count");
    f.cbpBlocks = design.fieldIndex("cbp_blocks");
    f.mvFrac = design.fieldIndex("mv_frac");
    f.refParts = design.fieldIndex("ref_parts");
    f.deblockEdges = design.fieldIndex("deblock_edges");
    return f;
}

Accelerator
makeH264Decoder()
{
    Design d("h264");

    const auto mb_type = d.addField("mb_type");
    const auto coeff_count = d.addField("coeff_count");
    const auto cbp_blocks = d.addField("cbp_blocks");
    const auto mv_frac = d.addField("mv_frac");
    const auto ref_parts = d.addField("ref_parts");
    const auto deblock_edges = d.addField("deblock_edges");

    // Value bounds honoured by workload::makeVideoClip; the lint pass
    // proves counter ranges and guards safe under them.
    d.setFieldRange(mb_type, 0, 4);
    d.setFieldRange(coeff_count, 0, 384);
    d.setFieldRange(cbp_blocks, 0, 24);
    d.setFieldRange(mv_frac, 0, 2);
    d.setFieldRange(ref_parts, 0, 4);
    d.setFieldRange(deblock_edges, 0, 48);

    // Datapath blocks (Figure 9 of the paper). Area weights place
    // ~94% of the design outside the control unit, matching the case
    // study's 5.7% slice-area figure.
    const auto parser_dp = d.addBlock("bitstream_parser_dp", 2600.0, 1.2);
    const auto residue_dp = d.addBlock("residue_idct_dp", 7200.0, 3.0);
    const auto intra_dp = d.addBlock("intra_pred_dp", 6400.0, 3.2);
    const auto mc_dp = d.addBlock("motion_comp_dp", 14200.0, 4.5);
    const auto deblock_dp = d.addBlock("deblock_filter_dp", 5200.0, 2.6);
    const auto frame_sram = d.addBlock("frame_scratchpad", 9400.0, 0.4, true);

    // Counters. The inter-prediction preload and interpolation
    // counters are the ones the paper's case study reports being
    // selected by Lasso; quarter-pel interpolation is much longer than
    // full-pel, the subtlety hand-picked features missed.
    const auto cnt_entropy = d.addCounter(
        "entropy_len", CounterDir::Down,
        Expr::add(lit(46),
                  Expr::add(Expr::mul(fld(coeff_count), lit(3)),
                            Expr::mul(fld(cbp_blocks), lit(9)))),
        16);
    const auto cnt_rescale = d.addCounter(
        "residue_rescale", CounterDir::Down,
        Expr::add(lit(12), Expr::mul(fld(coeff_count), lit(2))), 16);
    const auto cnt_idct = d.addCounter(
        "residue_idct", CounterDir::Up,
        Expr::add(lit(18), Expr::mul(fld(cbp_blocks), lit(38))), 16);
    const auto cnt_intra = d.addCounter(
        "intra_pred_len", CounterDir::Down,
        Expr::select(Expr::eq(fld(mb_type), lit(1)),
                     lit(16 * 480 + 60),  // I4x4: 16 sub-blocks.
                     lit(900)),           // I16x16.
        16);
    // Reference-block preload: the fractional motion-vector precision
    // decides how wide the loaded window is (quarter-pel needs a
    // 6-tap halo); partitions add a per-request overhead.
    const auto cnt_refload = d.addCounter(
        "mc_ref_preload", CounterDir::Down,
        Expr::add(
            Expr::select(Expr::eq(fld(mv_frac), lit(2)), lit(1600),
                         Expr::select(Expr::eq(fld(mv_frac), lit(1)),
                                      lit(1300), lit(1100))),
            Expr::mul(fld(ref_parts), lit(120))),
        16);
    // Interpolation: quarter-pel runs the long 6-tap + bilinear
    // chain over the whole macroblock (the effect hand-picked
    // features missed in the paper's case study).
    const auto cnt_interp = d.addCounter(
        "mc_interp_len", CounterDir::Down,
        Expr::add(
            Expr::select(Expr::eq(fld(mv_frac), lit(2)), lit(3100),
                         Expr::select(Expr::eq(fld(mv_frac), lit(1)),
                                      lit(2400), lit(2000))),
            Expr::mul(fld(ref_parts), lit(220))),
        16);
    const auto cnt_deblock = d.addCounter(
        "deblock_edges", CounterDir::Up,
        Expr::add(lit(26), Expr::mul(fld(deblock_edges), lit(11))), 16);

    const auto is_intra = Expr::le(fld(mb_type), lit(1));
    const auto is_coded = Expr::gt(fld(coeff_count), lit(0));

    // ---- FSM: bitstream parser (essential: it decodes the fields
    // every other unit consumes, so every slice must keep it). -------
    const auto parser = d.addFsm("parser");
    {
        State parse_hdr;
        parse_hdr.name = "ParseHeader";
        parse_hdr.kind = LatencyKind::Fixed;
        parse_hdr.fixedCycles = 30;
        parse_hdr.essential = true;
        parse_hdr.block = parser_dp;
        parse_hdr.dpOpsPerCycle = 1.0;
        parse_hdr.producesFields = {mb_type, mv_frac, ref_parts};
        const auto s_hdr = d.addState(parser, std::move(parse_hdr));

        State entropy;
        entropy.name = "EntropyDecode";
        entropy.kind = LatencyKind::CounterWait;
        entropy.counter = cnt_entropy;
        entropy.essential = true;
        entropy.block = parser_dp;
        entropy.dpOpsPerCycle = 1.4;
        entropy.producesFields = {coeff_count, cbp_blocks, deblock_edges};
        const auto s_entropy = d.addState(parser, std::move(entropy));

        // Bitstream buffer refill: latency depends on the coefficient
        // pattern in a way no counter exposes (small jitter).
        State refill;
        refill.name = "BsRefill";
        refill.kind = LatencyKind::Implicit;
        refill.implicitLatency =
            Expr::add(lit(8), Expr::mod(fld(coeff_count), lit(11)));
        refill.essential = true;
        refill.block = parser_dp;
        refill.dpOpsPerCycle = 0.6;
        const auto s_refill = d.addState(parser, std::move(refill));

        State dispatch;
        dispatch.name = "DispatchMb";
        dispatch.kind = LatencyKind::Fixed;
        dispatch.fixedCycles = 4;
        dispatch.terminal = true;
        const auto s_dispatch = d.addState(parser, std::move(dispatch));

        d.addTransition(parser, s_hdr, is_coded, s_entropy);
        d.addTransition(parser, s_hdr, nullptr, s_refill);
        d.addTransition(parser, s_entropy, nullptr, s_refill);
        d.addTransition(parser, s_refill, nullptr, s_dispatch);
    }

    // ---- FSM: residue decoding (rescale + inverse transform). ------
    const auto residue = d.addFsm("residue", parser);
    {
        State check;
        check.name = "CbpCheck";
        check.kind = LatencyKind::Fixed;
        check.fixedCycles = 2;
        const auto s_check = d.addState(residue, std::move(check));

        State rescale;
        rescale.name = "Rescale";
        rescale.kind = LatencyKind::CounterWait;
        rescale.counter = cnt_rescale;
        rescale.block = residue_dp;
        rescale.dpOpsPerCycle = 2.2;
        const auto s_rescale = d.addState(residue, std::move(rescale));

        State idct;
        idct.name = "Idct";
        idct.kind = LatencyKind::CounterWait;
        idct.counter = cnt_idct;
        idct.block = residue_dp;
        idct.dpOpsPerCycle = 3.4;
        const auto s_idct = d.addState(residue, std::move(idct));

        State done;
        done.name = "ResidueDone";
        done.kind = LatencyKind::Fixed;
        done.fixedCycles = 1;
        done.terminal = true;
        const auto s_done = d.addState(residue, std::move(done));

        d.addTransition(residue, s_check, is_coded, s_rescale);
        d.addTransition(residue, s_check, nullptr, s_done);
        d.addTransition(residue, s_rescale, nullptr, s_idct);
        d.addTransition(residue, s_idct, nullptr, s_done);
    }

    // ---- FSM: prediction (intra or motion compensation). -----------
    const auto pred = d.addFsm("prediction", parser);
    rtl::StateId pred_done_state = -1;
    {
        State route;
        route.name = "PredRoute";
        route.kind = LatencyKind::Fixed;
        route.fixedCycles = 2;
        const auto s_route = d.addState(pred, std::move(route));

        State neighb;
        neighb.name = "PrepNeighbors";
        neighb.kind = LatencyKind::Fixed;
        neighb.fixedCycles = 26;
        neighb.block = intra_dp;
        neighb.dpOpsPerCycle = 1.0;
        const auto s_neighb = d.addState(pred, std::move(neighb));

        State intra;
        intra.name = "IntraPredict";
        intra.kind = LatencyKind::CounterWait;
        intra.counter = cnt_intra;
        intra.block = intra_dp;
        intra.dpOpsPerCycle = 3.0;
        const auto s_intra = d.addState(pred, std::move(intra));

        State refload;
        refload.name = "RefPreload";
        refload.kind = LatencyKind::CounterWait;
        refload.counter = cnt_refload;
        refload.block = frame_sram;
        refload.dpOpsPerCycle = 1.8;
        const auto s_refload = d.addState(pred, std::move(refload));

        State interp;
        interp.name = "Interpolate";
        interp.kind = LatencyKind::CounterWait;
        interp.counter = cnt_interp;
        interp.block = mc_dp;
        interp.dpOpsPerCycle = 4.2;
        const auto s_interp = d.addState(pred, std::move(interp));

        State sum;
        sum.name = "PredSum";
        sum.kind = LatencyKind::Fixed;
        sum.fixedCycles = 20;
        sum.block = mc_dp;
        sum.dpOpsPerCycle = 2.0;
        const auto s_sum = d.addState(pred, std::move(sum));

        State done;
        done.name = "PredDone";
        done.kind = LatencyKind::Fixed;
        done.fixedCycles = 1;
        done.terminal = true;
        const auto s_done = d.addState(pred, std::move(done));
        pred_done_state = s_done;

        d.addTransition(pred, s_route, is_intra, s_neighb);
        d.addTransition(pred, s_route, nullptr, s_refload);
        d.addTransition(pred, s_neighb, nullptr, s_intra);
        d.addTransition(pred, s_intra, nullptr, s_done);
        d.addTransition(pred, s_refload, nullptr, s_interp);
        d.addTransition(pred, s_interp, nullptr, s_sum);
        d.addTransition(pred, s_sum, nullptr, s_done);
    }
    (void)pred_done_state;

    // ---- FSM: deblocking filter, after prediction completes. -------
    const auto deblock = d.addFsm("deblock", pred);
    {
        State strength;
        strength.name = "BoundaryStrength";
        strength.kind = LatencyKind::Fixed;
        strength.fixedCycles = 14;
        strength.block = deblock_dp;
        strength.dpOpsPerCycle = 1.2;
        const auto s_strength = d.addState(deblock, std::move(strength));

        State filter;
        filter.name = "EdgeFilter";
        filter.kind = LatencyKind::CounterWait;
        filter.counter = cnt_deblock;
        filter.block = deblock_dp;
        filter.dpOpsPerCycle = 2.8;
        const auto s_filter = d.addState(deblock, std::move(filter));

        State done;
        done.name = "DeblockDone";
        done.kind = LatencyKind::Fixed;
        done.fixedCycles = 1;
        done.terminal = true;
        const auto s_done = d.addState(deblock, std::move(done));

        d.addTransition(deblock, s_strength,
                        Expr::gt(fld(deblock_edges), lit(0)), s_filter);
        d.addTransition(deblock, s_strength, nullptr, s_done);
        d.addTransition(deblock, s_filter, nullptr, s_done);
    }

    // Frame-level DMA setup and drain.
    d.setPerJobOverheadCycles(5200);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 1.6e-11;
    energy.leakageWattsNominal = 49.28e-3;

    return Accelerator(std::move(d), 250e6, 659506.0, energy,
                       "H.264 video decoder", "Decode one frame");
}

} // namespace accel
} // namespace predvfs
