/**
 * @file
 * Registry of the paper's seven benchmark accelerators (Table 3).
 */

#ifndef PREDVFS_ACCEL_REGISTRY_HH
#define PREDVFS_ACCEL_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** @return the benchmark names in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/**
 * Construct one benchmark accelerator by name.
 *
 * @param name One of benchmarkNames(); fatal() on anything else.
 */
std::shared_ptr<const Accelerator> makeAccelerator(
    const std::string &name);

/** Construct the whole suite, in paper order. */
std::vector<std::shared_ptr<const Accelerator>> makeAllAccelerators();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_REGISTRY_HH
