/**
 * @file
 * The H.264/AVC baseline decoder benchmark (paper Section 3.7 case
 * study; RTL after Xu & Choy). One job decodes one frame; one work
 * item is one macroblock.
 */

#ifndef PREDVFS_ACCEL_H264_HH
#define PREDVFS_ACCEL_H264_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/**
 * Work-item field layout of the H.264 decoder.
 *
 * Generators write these; the design's guards and counter ranges read
 * them. Field semantics follow the real decoder's per-macroblock
 * syntax elements.
 */
struct H264Fields
{
    rtl::FieldId mbType;        //!< 0 I16x16, 1 I4x4, 2 P16x16,
                                //!< 3 P8x8, 4 P_SKIP.
    rtl::FieldId coeffCount;    //!< Non-zero transform coefficients.
    rtl::FieldId cbpBlocks;     //!< Coded 8x8 blocks (0..24).
    rtl::FieldId mvFrac;        //!< 0 full-, 1 half-, 2 quarter-pel.
    rtl::FieldId refParts;      //!< Motion partitions (1, 2 or 4).
    rtl::FieldId deblockEdges;  //!< Edges the loop filter touches.
};

/** @return the field layout for a built H.264 design. */
H264Fields h264Fields(const rtl::Design &design);

/** Build the H.264 decoder benchmark accelerator. */
Accelerator makeH264Decoder();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_H264_HH
