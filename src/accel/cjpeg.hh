/**
 * @file
 * JPEG encoder benchmark (OpenCores video_systems). One job encodes
 * one image; one work item is one 16x16 MCU.
 */

#ifndef PREDVFS_ACCEL_CJPEG_HH
#define PREDVFS_ACCEL_CJPEG_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the JPEG encoder. */
struct CjpegFields
{
    rtl::FieldId nonzeroCoeffs;  //!< Post-quantisation AC coefficients.
    rtl::FieldId chromaSub;      //!< 1 if the MCU carries subsampled
                                 //!< chroma blocks.
};

/** @return the field layout for a built cjpeg design. */
CjpegFields cjpegFields(const rtl::Design &design);

/** Build the JPEG encoder benchmark accelerator. */
Accelerator makeJpegEncoder();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_CJPEG_HH
