#include "accel/md.hh"

#include "accel/builder.hh"
#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::lit;

MdFields
mdFields(const rtl::Design &design)
{
    MdFields f;
    f.neighbors = design.fieldIndex("neighbors");
    return f;
}

Accelerator
makeMdAccelerator()
{
    Design d("md");

    const auto neighbors = d.addField("neighbors");

    // Value bounds honoured by workload::makeMdTimesteps.
    d.setFieldRange(neighbors, 0, 512);

    const auto force_dp = d.addBlock("lj_force_dp", 2100.0, 4.0);
    const auto pos_sram = d.addBlock("position_scratchpad", 700.0, 0.4, true);

    // Neighbour-list DMA preload and the force inner loop both scale
    // with the neighbour count.
    const auto cnt_fetch = d.addCounter(
        "nlist_fetch", CounterDir::Down,
        Expr::add(lit(20), Expr::mul(fld(neighbors), lit(14))), 16);
    const auto cnt_force = d.addCounter(
        "force_loop", CounterDir::Up,
        Expr::add(lit(44), Expr::mul(fld(neighbors), lit(157))), 20);

    // ---- FSM: neighbour-list walker (essential: it discovers the
    // neighbour count the force loop depends on). --------------------
    const auto nlist = d.addFsm("nlist");
    const auto s_fetch = d.addState(
        nlist,
        essential(waitState("FetchNeighbors", cnt_fetch, pos_sram, 1.1),
                  {neighbors}));
    const auto s_ndone = d.addState(nlist, doneState("NlistDone"));
    d.addTransition(nlist, s_fetch, nullptr, s_ndone);

    // ---- FSM: force computation. ------------------------------------
    const auto force = d.addFsm("force", nlist);
    const auto s_check = d.addState(force, fixedState("PairCheck", 2));
    const auto s_loop = d.addState(
        force, waitState("ForceLoop", cnt_force, force_dp, 4.6));
    const auto s_fdone = d.addState(force, doneState("ForceDone"));
    d.addTransition(force, s_check, Expr::gt(fld(neighbors), lit(0)),
                    s_loop);
    d.addTransition(force, s_check, nullptr, s_fdone);
    d.addTransition(force, s_loop, nullptr, s_fdone);

    // ---- FSM: position integrator. ----------------------------------
    const auto integ = d.addFsm("integrate", force);
    const auto s_upd = d.addState(
        integ, fixedState("VerletUpdate", 52, force_dp, 2.2));
    const auto s_idone = d.addState(integ, doneState("IntegrateDone"));
    d.addTransition(integ, s_upd, nullptr, s_idone);

    d.setPerJobOverheadCycles(1800);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 0.9e-11;
    energy.leakageWattsNominal = 4.22e-3;

    return Accelerator(std::move(d), 455e6, 31791.0, energy,
                       "Molecules/physics simulation",
                       "Simulate one timestep");
}

} // namespace accel
} // namespace predvfs
