/**
 * @file
 * AES benchmark (OpenCores aes_core). One job encrypts one piece of
 * data (e.g. one DRM-protected frame); one work item is one 4 KiB
 * segment of the buffer.
 */

#ifndef PREDVFS_ACCEL_AES_HH
#define PREDVFS_ACCEL_AES_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the AES accelerator. */
struct AesFields
{
    rtl::FieldId blocks;    //!< 16-byte blocks in this segment (1..256).
    rtl::FieldId cbcMode;   //!< 1 for CBC chaining, 0 for ECB/CTR.
    rtl::FieldId keyRounds; //!< 10/12/14 for AES-128/192/256.
    rtl::FieldId firstSeg;  //!< 1 on the first segment (key schedule).
};

/** @return the field layout for a built aes design. */
AesFields aesFields(const rtl::Design &design);

/** Build the AES benchmark accelerator. */
Accelerator makeAesAccelerator();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_AES_HH
