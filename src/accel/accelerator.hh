/**
 * @file
 * An Accelerator bundles an RTL design with its implementation
 * metadata: nominal clock, placed-and-routed area, and energy
 * calibration. This is the unit the benchmark suite (Table 3/4 of the
 * paper) enumerates and the prediction flow consumes.
 */

#ifndef PREDVFS_ACCEL_ACCELERATOR_HH
#define PREDVFS_ACCEL_ACCELERATOR_HH

#include <memory>
#include <string>

#include "power/energy_model.hh"
#include "rtl/design.hh"

namespace predvfs {
namespace accel {

/**
 * A benchmark accelerator: design + implementation results.
 *
 * Accelerators are immutable after construction and shared by
 * reference; the factory functions in this module (makeH264Decoder()
 * and friends) each build one benchmark of the paper's Table 3.
 */
class Accelerator
{
  public:
    /**
     * @param design        Validated RTL design.
     * @param f_nominal_hz  Synthesis frequency at nominal voltage.
     * @param area_um2      Post-place-and-route area (65 nm).
     * @param energy        Gate-level energy calibration.
     * @param description   Table 3 "Description" column.
     * @param task          Table 3 "Task" column.
     */
    Accelerator(rtl::Design design, double f_nominal_hz, double area_um2,
                power::EnergyParams energy, std::string description,
                std::string task);

    const rtl::Design &design() const { return rtlDesign; }
    const std::string &name() const { return rtlDesign.name(); }
    double nominalFrequencyHz() const { return fNominal; }
    double areaUm2() const { return area; }
    const power::EnergyParams &energyParams() const { return energy; }
    const std::string &description() const { return desc; }
    const std::string &task() const { return taskDesc; }

    /**
     * um^2 per abstract area unit: calibrates the structural area
     * model so the full design matches the placed-and-routed area.
     * Slice areas use the same scale, giving the Figure 12 overheads.
     */
    double um2PerAreaUnit() const;

  private:
    rtl::Design rtlDesign;
    double fNominal;
    double area;
    power::EnergyParams energy;
    std::string desc;
    std::string taskDesc;
};

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_ACCELERATOR_HH
