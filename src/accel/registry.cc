#include "accel/registry.hh"

#include "accel/aes.hh"
#include "accel/cjpeg.hh"
#include "accel/djpeg.hh"
#include "accel/h264.hh"
#include "accel/md.hh"
#include "accel/sha.hh"
#include "accel/stencil.hh"
#include "util/logging.hh"

namespace predvfs {
namespace accel {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "h264", "cjpeg", "djpeg", "md", "stencil", "aes", "sha",
    };
    return names;
}

std::shared_ptr<const Accelerator>
makeAccelerator(const std::string &name)
{
    if (name == "h264")
        return std::make_shared<const Accelerator>(makeH264Decoder());
    if (name == "cjpeg")
        return std::make_shared<const Accelerator>(makeJpegEncoder());
    if (name == "djpeg")
        return std::make_shared<const Accelerator>(makeJpegDecoder());
    if (name == "md")
        return std::make_shared<const Accelerator>(makeMdAccelerator());
    if (name == "stencil")
        return std::make_shared<const Accelerator>(
            makeStencilAccelerator());
    if (name == "aes")
        return std::make_shared<const Accelerator>(makeAesAccelerator());
    if (name == "sha")
        return std::make_shared<const Accelerator>(makeShaAccelerator());
    util::fatal("unknown benchmark accelerator '", name, "'");
}

std::vector<std::shared_ptr<const Accelerator>>
makeAllAccelerators()
{
    std::vector<std::shared_ptr<const Accelerator>> all;
    for (const auto &name : benchmarkNames())
        all.push_back(makeAccelerator(name));
    return all;
}

} // namespace accel
} // namespace predvfs
