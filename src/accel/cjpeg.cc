#include "accel/cjpeg.hh"

#include "accel/builder.hh"
#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::lit;

CjpegFields
cjpegFields(const rtl::Design &design)
{
    CjpegFields f;
    f.nonzeroCoeffs = design.fieldIndex("nonzero_coeffs");
    f.chromaSub = design.fieldIndex("chroma_sub");
    return f;
}

Accelerator
makeJpegEncoder()
{
    Design d("cjpeg");

    const auto nonzero = d.addField("nonzero_coeffs");
    const auto chroma = d.addField("chroma_sub");

    // Value bounds honoured by workload::makeEncodeImages.
    d.setFieldRange(nonzero, 0, 384);
    d.setFieldRange(chroma, 0, 1);

    const auto fdct_dp = d.addBlock("fdct_dp", 2400.0, 2.8);
    const auto quant_dp = d.addBlock("quant_dp", 340.0, 1.6);
    const auto huff_dp = d.addBlock("huffman_enc_dp", 780.0, 1.1);
    const auto mcu_sram = d.addBlock("mcu_scratchpad", 1400.0, 0.3, true);

    // The forward DCT runs a fixed schedule per MCU; subsampled
    // chroma MCUs push two extra blocks through it.
    const auto cnt_fdct = d.addCounter(
        "fdct_sched", CounterDir::Down,
        Expr::select(fld(chroma), lit(6 * 44), lit(4 * 44)), 16);
    const auto cnt_quant = d.addCounter(
        "quant_sched", CounterDir::Up,
        Expr::select(fld(chroma), lit(6 * 4), lit(4 * 4)), 16);
    // Huffman/run-length time tracks the number of non-zero
    // coefficients the quantiser left.
    const auto cnt_huff = d.addCounter(
        "huffman_len", CounterDir::Down,
        Expr::add(lit(36), Expr::mul(fld(nonzero), lit(2))), 16);

    // ---- FSM: MCU pipeline control. --------------------------------
    const auto ctrl = d.addFsm("mcu_ctrl");
    const auto s_load = d.addState(
        ctrl, essential(fixedState("LoadMcu", 12, mcu_sram, 0.8)));
    const auto s_fdct = d.addState(
        ctrl, waitState("Fdct", cnt_fdct, fdct_dp, 3.6));
    const auto s_quant = d.addState(
        ctrl,
        essential(waitState("Quantize", cnt_quant, quant_dp, 2.0),
                  {nonzero}));
    const auto s_done = d.addState(ctrl, doneState("McuDone"));
    d.addTransition(ctrl, s_load, nullptr, s_fdct);
    d.addTransition(ctrl, s_fdct, nullptr, s_quant);
    d.addTransition(ctrl, s_quant, nullptr, s_done);

    // ---- FSM: entropy coder, chained after the quantiser. ----------
    const auto huff = d.addFsm("entropy", ctrl);
    const auto s_check = d.addState(huff, fixedState("RunCheck", 2));
    const auto s_encode = d.addState(
        huff, waitState("HuffEncode", cnt_huff, huff_dp, 1.8));
    const auto s_flush = d.addState(huff, fixedState("BitFlush", 6,
                                                     huff_dp, 0.9));
    const auto s_hdone = d.addState(huff, doneState("EntropyDone"));
    d.addTransition(huff, s_check, Expr::gt(fld(nonzero), lit(0)),
                    s_encode);
    d.addTransition(huff, s_check, nullptr, s_flush);
    d.addTransition(huff, s_encode, nullptr, s_flush);
    d.addTransition(huff, s_flush, nullptr, s_hdone);

    d.setPerJobOverheadCycles(2600);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 1.1e-11;
    energy.leakageWattsNominal = 14.08e-3;

    return Accelerator(std::move(d), 250e6, 175225.0, energy,
                       "JPEG encoder", "Encode one image");
}

} // namespace accel
} // namespace predvfs
