#include "accel/djpeg.hh"

#include "accel/builder.hh"
#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::lit;

DjpegFields
djpegFields(const rtl::Design &design)
{
    DjpegFields f;
    f.acCoeffs = design.fieldIndex("ac_coeffs");
    f.runPattern = design.fieldIndex("run_pattern");
    f.chromaSub = design.fieldIndex("chroma_sub");
    return f;
}

Accelerator
makeJpegDecoder()
{
    Design d("djpeg");

    const auto ac = d.addField("ac_coeffs");
    const auto run = d.addField("run_pattern");
    const auto chroma = d.addField("chroma_sub");

    // Value bounds honoured by workload::makeDecodeImages.
    d.setFieldRange(ac, 0, 384);
    d.setFieldRange(run, 0, 255);
    d.setFieldRange(chroma, 0, 1);

    const auto vld_dp = d.addBlock("vld_dp", 1500.0, 1.3);
    const auto idct_dp = d.addBlock("idct_dp", 7500.0, 3.2);
    const auto color_dp = d.addBlock("upsample_color_dp", 3400.0, 2.4);
    const auto mcu_sram = d.addBlock("mcu_scratchpad", 2200.0, 0.3, true);

    const auto cnt_idct = d.addCounter(
        "idct_sched", CounterDir::Down,
        Expr::add(lit(60),
                  Expr::add(Expr::mul(fld(ac), lit(2)),
                            Expr::select(fld(chroma), lit(120), lit(60)))),
        16);
    const auto cnt_color = d.addCounter(
        "color_conv", CounterDir::Up,
        Expr::select(fld(chroma), lit(208), lit(132)), 16);

    // ---- FSM: variable-length decoder. The HuffDecode state's dwell
    // depends on the bit patterns (run_pattern) with no counter — the
    // analysis flags it as an unmodellable variance source. ----------
    const auto vld = d.addFsm("vld");
    const auto s_sync = d.addState(
        vld, essential(fixedState("MarkerSync", 8, vld_dp, 0.6)));
    // Dwell: table walk plus per-coefficient decode plus a small
    // pattern-dependent refill jitter. The state has no counter, but
    // its latency is near-linear in the coefficient count, so the
    // model absorbs it through the IDCT counter features.
    const auto vld_latency = Expr::add(
        lit(14),
        Expr::add(
            Expr::div(fld(ac), lit(3)),
            Expr::mod(Expr::mul(fld(run), Expr::add(fld(ac), lit(3))),
                      lit(13))));
    const auto s_decode = d.addState(
        vld, essential(implicitState("HuffDecode", vld_latency, vld_dp,
                                     1.5),
                       {ac, run, chroma}));
    const auto s_vdone = d.addState(vld, doneState("VldDone"));
    d.addTransition(vld, s_sync, nullptr, s_decode);
    d.addTransition(vld, s_decode, nullptr, s_vdone);

    // ---- FSM: inverse DCT, after the VLD. ---------------------------
    const auto idct = d.addFsm("idct", vld);
    const auto s_icheck = d.addState(idct, fixedState("CoeffCheck", 2));
    const auto s_itrans = d.addState(
        idct, waitState("InverseDct", cnt_idct, idct_dp, 3.8));
    // Coefficient-pattern-dependent raster stall: the FSM waits here
    // a data-dependent number of cycles with NO counter exposing it —
    // the unmodellable variance source the paper blames for djpeg's
    // wider prediction-error box (Figure 10). Quadratic in ac, so it
    // does not average out across a job the way random jitter would.
    const auto s_stall = d.addState(
        idct,
        implicitState("RasterStall",
                      Expr::add(lit(6),
                                Expr::div(Expr::mul(fld(ac), fld(ac)),
                                          lit(80))),
                      idct_dp, 0.8));
    const auto s_dcfill = d.addState(
        idct, fixedState("DcFill", 24, idct_dp, 1.2));
    const auto s_idone = d.addState(idct, doneState("IdctDone"));
    d.addTransition(idct, s_icheck, Expr::gt(fld(ac), lit(0)), s_itrans);
    d.addTransition(idct, s_icheck, nullptr, s_dcfill);
    d.addTransition(idct, s_itrans, nullptr, s_stall);
    d.addTransition(idct, s_stall, nullptr, s_idone);
    d.addTransition(idct, s_dcfill, nullptr, s_idone);

    // ---- FSM: upsampling and colour conversion, after the IDCT. ----
    const auto color = d.addFsm("color", vld);
    const auto s_up = d.addState(
        color, waitState("UpsampleConvert", cnt_color, color_dp, 2.6));
    const auto s_store = d.addState(
        color, fixedState("StorePixels", 18, mcu_sram, 0.8));
    const auto s_cdone = d.addState(color, doneState("ColorDone"));
    d.addTransition(color, s_up, nullptr, s_store);
    d.addTransition(color, s_store, nullptr, s_cdone);

    d.setPerJobOverheadCycles(3100);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 1.3e-11;
    energy.leakageWattsNominal = 28.16e-3;

    return Accelerator(std::move(d), 250e6, 394635.0, energy,
                       "JPEG decoder", "Decode one image");
}

} // namespace accel
} // namespace predvfs
