/**
 * @file
 * JPEG decoder benchmark (OpenCores djpeg). One job decodes one image;
 * one work item is one MCU.
 *
 * The variable-length decoder's FSM dwells in its decode state for a
 * bit-pattern-dependent number of cycles that no counter tracks — the
 * paper singles this design out for exactly that reason (its
 * prediction error in Figure 10 is visibly wider than the others').
 */

#ifndef PREDVFS_ACCEL_DJPEG_HH
#define PREDVFS_ACCEL_DJPEG_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the JPEG decoder. */
struct DjpegFields
{
    rtl::FieldId acCoeffs;    //!< Non-zero AC coefficients in the MCU.
    rtl::FieldId runPattern;  //!< Hash of the run-length structure;
                              //!< drives un-counted VLD stalls.
    rtl::FieldId chromaSub;   //!< 1 if chroma is subsampled.
};

/** @return the field layout for a built djpeg design. */
DjpegFields djpegFields(const rtl::Design &design);

/** Build the JPEG decoder benchmark accelerator. */
Accelerator makeJpegDecoder();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_DJPEG_HH
