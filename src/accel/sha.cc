#include "accel/sha.hh"

#include "accel/builder.hh"
#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::lit;

ShaFields
shaFields(const rtl::Design &design)
{
    ShaFields f;
    f.chunks = design.fieldIndex("chunks");
    f.lastSeg = design.fieldIndex("last_seg");
    return f;
}

Accelerator
makeShaAccelerator()
{
    Design d("sha");

    const auto chunks = d.addField("chunks");
    const auto last = d.addField("last_seg");

    // Value bounds honoured by workload::makeShaBuffers.
    d.setFieldRange(chunks, 1, 64);
    d.setFieldRange(last, 0, 1);

    const auto round_dp = d.addBlock("compress_dp", 1500.0, 2.8);
    const auto w_sram = d.addBlock("schedule_buffer", 520.0, 0.5, true);

    const auto cnt_sched = d.addCounter(
        "msg_schedule", CounterDir::Down,
        Expr::add(lit(12), Expr::mul(fld(chunks), lit(16))), 16);
    // 64 compression rounds per chunk; the final segment pays an
    // extra padded chunk.
    const auto cnt_compress = d.addCounter(
        "compress_rounds", CounterDir::Up,
        Expr::add(Expr::mul(fld(chunks), lit(64)),
                  Expr::select(fld(last), lit(72), lit(0))),
        20);

    // ---- FSM: message scheduler. The segment length comes from a
    // cheap header read; W expansion itself is sliced away. -----------
    const auto sched = d.addFsm("scheduler");
    const auto s_len = d.addState(
        sched,
        essential(fixedState("ReadLength", 4, w_sram, 0.4),
                  {chunks, last}));
    const auto s_exp = d.addState(
        sched, waitState("ExpandW", cnt_sched, w_sram, 1.0));
    const auto s_sdone = d.addState(sched, doneState("SchedDone"));
    d.addTransition(sched, s_len, nullptr, s_exp);
    d.addTransition(sched, s_exp, nullptr, s_sdone);

    // ---- FSM: compression core. --------------------------------------
    const auto comp = d.addFsm("compressor", sched);
    const auto s_rounds = d.addState(
        comp, waitState("CompressRounds", cnt_compress, round_dp, 3.2));
    const auto s_digest = d.addState(
        comp, fixedState("DigestUpdate", 10, round_dp, 1.4));
    const auto s_cdone = d.addState(comp, doneState("CompressDone"));
    d.addTransition(comp, s_rounds, nullptr, s_digest);
    d.addTransition(comp, s_digest, nullptr, s_cdone);

    d.setPerJobOverheadCycles(1100);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 0.85e-11;
    energy.leakageWattsNominal = 2.82e-3;

    return Accelerator(std::move(d), 500e6, 19740.0, energy,
                       "Secure Hash Function", "Hash a piece of data");
}

} // namespace accel
} // namespace predvfs
