#include "accel/stencil.hh"

#include "accel/builder.hh"
#include "rtl/expr.hh"

namespace predvfs {
namespace accel {

using rtl::CounterDir;
using rtl::Design;
using rtl::Expr;
using rtl::fld;
using rtl::lit;

StencilFields
stencilFields(const rtl::Design &design)
{
    StencilFields f;
    f.width = design.fieldIndex("width");
    f.boundary = design.fieldIndex("boundary");
    return f;
}

Accelerator
makeStencilAccelerator()
{
    Design d("stencil");

    const auto width = d.addField("width");
    const auto boundary = d.addField("boundary");

    // Value bounds honoured by workload::makeStencilImages.
    d.setFieldRange(width, 1, 4096);
    d.setFieldRange(boundary, 0, 1);

    // The compute datapath is DSP-heavy relative to the tiny control
    // unit — which is why the paper's Figure 17 notes stencil's
    // *relative* slice-resource overhead looks large on FPGA.
    const auto mac_dp = d.addBlock("stencil_mac_dp", 2300.0, 4.4);
    const auto row_sram = d.addBlock("row_buffer", 650.0, 0.4, true);

    const auto cnt_load = d.addCounter(
        "row_dma", CounterDir::Down,
        Expr::add(lit(20), Expr::mul(fld(width), lit(2))), 16);
    const auto cnt_mac = d.addCounter(
        "mac_sched", CounterDir::Up,
        Expr::add(lit(30),
                  Expr::mul(fld(width),
                            Expr::select(fld(boundary), lit(4), lit(6)))),
        20);
    const auto cnt_store = d.addCounter(
        "row_writeback", CounterDir::Down,
        Expr::add(lit(14), fld(width)), 16);
    // Row descriptor fetch: one metadata beat per four pixels.
    const auto cnt_hdr = d.addCounter(
        "row_descriptor", CounterDir::Down,
        Expr::add(lit(4), Expr::div(fld(width), lit(6))), 16);

    // ---- FSM: row pipeline. The row descriptor (width, boundary
    // flag) is decoded by a cheap header read; the bulk pixel DMA and
    // MAC sweep carry no control information, so the slice elides
    // them entirely. ---------------------------------------------------
    const auto ctrl = d.addFsm("row_ctrl");
    const auto s_hdr = d.addState(
        ctrl,
        essential(waitState("RowHeader", cnt_hdr, row_sram, 0.4),
                  {width, boundary}));
    const auto s_load = d.addState(
        ctrl, waitState("LoadRow", cnt_load, row_sram, 0.9));
    const auto s_mac = d.addState(
        ctrl, waitState("MacSweep", cnt_mac, mac_dp, 4.8));
    const auto s_store = d.addState(
        ctrl, waitState("StoreRow", cnt_store, row_sram, 0.9));
    const auto s_done = d.addState(ctrl, doneState("RowDone"));
    d.addTransition(ctrl, s_hdr, nullptr, s_load);
    d.addTransition(ctrl, s_load, nullptr, s_mac);
    d.addTransition(ctrl, s_mac, nullptr, s_store);
    d.addTransition(ctrl, s_store, nullptr, s_done);

    d.setPerJobOverheadCycles(900);
    d.setControlEnergyPerCycle(1.0);
    d.validate();

    power::EnergyParams energy;
    energy.joulesPerUnit = 0.8e-11;
    energy.leakageWattsNominal = 1.76e-3;

    return Accelerator(std::move(d), 602e6, 10140.0, energy,
                       "Image filtering", "Filter one image");
}

} // namespace accel
} // namespace predvfs
