/**
 * @file
 * Small helpers for constructing accelerator FSM states; used by the
 * benchmark design factories to stay readable.
 */

#ifndef PREDVFS_ACCEL_BUILDER_HH
#define PREDVFS_ACCEL_BUILDER_HH

#include <string>

#include "rtl/design.hh"

namespace predvfs {
namespace accel {

/** Make a fixed-latency state. */
inline rtl::State
fixedState(std::string name, int cycles, rtl::BlockId block = -1,
           double dp_ops = 0.0)
{
    rtl::State st;
    st.name = std::move(name);
    st.kind = rtl::LatencyKind::Fixed;
    st.fixedCycles = cycles;
    st.block = block;
    st.dpOpsPerCycle = dp_ops;
    return st;
}

/** Make a counter-wait state. */
inline rtl::State
waitState(std::string name, rtl::CounterId counter,
          rtl::BlockId block = -1, double dp_ops = 0.0)
{
    rtl::State st;
    st.name = std::move(name);
    st.kind = rtl::LatencyKind::CounterWait;
    st.counter = counter;
    st.block = block;
    st.dpOpsPerCycle = dp_ops;
    return st;
}

/** Make an implicit-latency state (input-dependent, no counter). */
inline rtl::State
implicitState(std::string name, rtl::ExprPtr latency,
              rtl::BlockId block = -1, double dp_ops = 0.0)
{
    rtl::State st;
    st.name = std::move(name);
    st.kind = rtl::LatencyKind::Implicit;
    st.implicitLatency = std::move(latency);
    st.block = block;
    st.dpOpsPerCycle = dp_ops;
    return st;
}

/** Make a one-cycle terminal state. */
inline rtl::State
doneState(std::string name)
{
    rtl::State st;
    st.name = std::move(name);
    st.kind = rtl::LatencyKind::Fixed;
    st.fixedCycles = 1;
    st.terminal = true;
    return st;
}

/** Mark a state essential (latency survives slicing). */
inline rtl::State
essential(rtl::State st, std::vector<rtl::FieldId> produces = {})
{
    st.essential = true;
    st.producesFields = std::move(produces);
    return st;
}

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_BUILDER_HH
