/**
 * @file
 * SHA-256 benchmark (OpenCores sha_core). One job hashes one piece of
 * data; one work item is one 4 KiB segment (64 message chunks).
 */

#ifndef PREDVFS_ACCEL_SHA_HH
#define PREDVFS_ACCEL_SHA_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the SHA accelerator. */
struct ShaFields
{
    rtl::FieldId chunks;   //!< 512-bit message chunks (1..64).
    rtl::FieldId lastSeg;  //!< 1 on the final segment (padding pass).
};

/** @return the field layout for a built sha design. */
ShaFields shaFields(const rtl::Design &design);

/** Build the SHA benchmark accelerator. */
Accelerator makeShaAccelerator();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_SHA_HH
