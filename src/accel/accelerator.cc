#include "accel/accelerator.hh"

#include "util/logging.hh"

namespace predvfs {
namespace accel {

using util::panicIf;

Accelerator::Accelerator(rtl::Design design, double f_nominal_hz,
                         double area_um2, power::EnergyParams energy,
                         std::string description, std::string task)
    : rtlDesign(std::move(design)),
      fNominal(f_nominal_hz),
      area(area_um2),
      energy(energy),
      desc(std::move(description)),
      taskDesc(std::move(task))
{
    panicIf(!rtlDesign.validated(),
            "Accelerator '", rtlDesign.name(), "': design not validated");
    panicIf(fNominal <= 0.0, "Accelerator: bad nominal frequency");
    panicIf(area <= 0.0, "Accelerator: bad area");
}

double
Accelerator::um2PerAreaUnit() const
{
    return area / rtlDesign.areaUnits();
}

} // namespace accel
} // namespace predvfs
