/**
 * @file
 * Molecular-dynamics benchmark (MachSuite md/knn). One job simulates
 * one timestep; one work item is one particle.
 */

#ifndef PREDVFS_ACCEL_MD_HH
#define PREDVFS_ACCEL_MD_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the MD accelerator. */
struct MdFields
{
    rtl::FieldId neighbors;  //!< Particles within the cutoff radius.
};

/** @return the field layout for a built md design. */
MdFields mdFields(const rtl::Design &design);

/** Build the molecular-dynamics benchmark accelerator. */
Accelerator makeMdAccelerator();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_MD_HH
