/**
 * @file
 * Stencil image-filtering benchmark (MachSuite stencil). One job
 * filters one image; one work item is one image row.
 */

#ifndef PREDVFS_ACCEL_STENCIL_HH
#define PREDVFS_ACCEL_STENCIL_HH

#include "accel/accelerator.hh"

namespace predvfs {
namespace accel {

/** Work-item field layout of the stencil accelerator. */
struct StencilFields
{
    rtl::FieldId width;     //!< Pixels in the row.
    rtl::FieldId boundary;  //!< 1 for top/bottom rows (edge handling).
};

/** @return the field layout for a built stencil design. */
StencilFields stencilFields(const rtl::Design &design);

/** Build the stencil filtering benchmark accelerator. */
Accelerator makeStencilAccelerator();

} // namespace accel
} // namespace predvfs

#endif // PREDVFS_ACCEL_STENCIL_HH
