/**
 * @file
 * Online prediction watchdog: decides, one job at a time, whether the
 * slice predictor can still be trusted.
 *
 * The watchdog tracks an EWMA of the signed relative prediction error
 * ((actual - predicted) / actual; positive = under-prediction, the
 * dangerous direction) plus streak counters for significant
 * under-predictions and deadline misses, and runs the degradation
 * ladder
 *
 *   Healthy -> Warning -> Tripped -> SafeMode
 *
 * with hysteresis: escalation is immediate when a trip condition
 * holds, de-escalation steps down one rung only after a configurable
 * streak of clean jobs. The default thresholds are calibrated against
 * the seven benchmark suites' clean runs (max under-prediction error
 * 4.4%, max error EWMA 1.4%, max miss streak 1), so a fault-free
 * stream never leaves Healthy — the GuardedPredictiveController's
 * zero-overhead wrapper invariant depends on that headroom.
 */

#ifndef PREDVFS_CORE_WATCHDOG_HH
#define PREDVFS_CORE_WATCHDOG_HH

#include <cstddef>

namespace predvfs {
namespace core {

/** Trust level of the predictor, ordered from best to worst. */
enum class HealthState
{
    Healthy = 0,   //!< Predictions track reality; trust the slice.
    Warning = 1,   //!< Early warning; inflate margins defensively.
    Tripped = 2,   //!< Predictor untrustworthy; fall back to PID.
    SafeMode = 3,  //!< Repeated misses; run at maximum frequency.
};

/** @return a short human-readable name for @p state. */
const char *healthStateName(HealthState state);

/** Trip thresholds and hysteresis of the watchdog. */
struct WatchdogConfig
{
    /** EWMA smoothing factor for the signed relative error. Low on
     *  purpose: one corrupted job must not look like systematic
     *  drift (tripping on isolated spikes swaps a mostly-correct
     *  predictor for the laggier PID fallback). */
    double ewmaAlpha = 0.15;

    /** @name Healthy -> Warning */
    /// @{
    double warnSingleUnderFraction = 0.30;  //!< One-shot under-pred.
    double warnEwmaUnderFraction = 0.10;    //!< Sustained under-pred.
    std::size_t warnMissStreak = 2;         //!< Consecutive misses.
    /// @}

    /** @name Warning -> Tripped (persistent-fault evidence only) */
    /// @{
    /** An under-prediction beyond this counts toward the streak. */
    double streakUnderFraction = 0.15;
    std::size_t tripUnderStreak = 3;
    double tripEwmaUnderFraction = 0.45;
    std::size_t tripMissStreak = 3;
    /// @}

    /** Any state -> SafeMode: consecutive deadline misses. */
    std::size_t safeMissStreak = 5;

    /** @name Re-promotion (one rung down per clean streak) */
    /// @{
    /** A job is clean when it met its deadline and its relative
     *  under-prediction error stayed below this fraction. */
    double cleanUnderFraction = 0.10;
    std::size_t repromoteCleanStreak = 20;
    /// @}
};

/** EWMA + streak tracker driving the degradation ladder. */
class PredictionWatchdog
{
  public:
    explicit PredictionWatchdog(WatchdogConfig config = {});

    /**
     * Feed one finished job.
     *
     * @param predicted_seconds The slice's execution-time estimate at
     *        nominal frequency (even while degraded — recovery is
     *        detected by the slice becoming accurate again).
     * @param actual_seconds    Measured execution time at nominal.
     * @param missed_deadline   Whether the job overran its budget.
     */
    void observe(double predicted_seconds, double actual_seconds,
                 bool missed_deadline);

    HealthState state() const { return current; }

    /** Signed EWMA of (actual - predicted) / actual. */
    double ewmaUnderError() const { return ewma; }

    std::size_t underStreak() const { return underRun; }
    std::size_t missStreak() const { return missRun; }
    std::size_t cleanStreak() const { return cleanRun; }
    std::size_t jobsObserved() const { return observed; }

    /** Escalations (rung ups) and re-promotions (rung downs) so far. */
    std::size_t escalations() const { return ups; }
    std::size_t repromotions() const { return downs; }

    const WatchdogConfig &config() const { return cfg; }

    /** Forget all history and return to Healthy. */
    void reset();

  private:
    WatchdogConfig cfg;
    HealthState current = HealthState::Healthy;
    double ewma = 0.0;
    std::size_t underRun = 0;
    std::size_t missRun = 0;
    std::size_t cleanRun = 0;
    std::size_t observed = 0;
    std::size_t ups = 0;
    std::size_t downs = 0;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_WATCHDOG_HH
