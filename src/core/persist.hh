/**
 * @file
 * Predictor persistence: a trained SlicePredictor — the slice design,
 * the feature list, and the model coefficients — serialised to a
 * single text stream, so the offline flow's output can ship with a
 * driver and be reloaded without retraining.
 *
 * The stream ends with an FNV-1a checksum line over everything before
 * it, so corruption or truncation between training and deployment is
 * detected at load time instead of producing a silently-wrong
 * predictor.
 */

#ifndef PREDVFS_CORE_PERSIST_HH
#define PREDVFS_CORE_PERSIST_HH

#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

#include "core/predictor.hh"

namespace predvfs {
namespace core {

/** Write @p predictor to @p os (textual, versioned, checksummed). */
void savePredictor(std::ostream &os, const SlicePredictor &predictor);

/**
 * Try to reload a predictor saved with savePredictor().
 *
 * The stream's checksum is verified before anything is parsed, so a
 * corrupted or truncated stream is reported instead of being loaded.
 * (A stream whose checksum verifies but whose checksummed content is
 * malformed indicates a writer bug and still fatal()s.)
 *
 * @param is    Stream to read (consumed to the end).
 * @param error If non-null, receives a description of the failure.
 * @return the predictor, or std::nullopt on a malformed stream.
 */
std::optional<std::shared_ptr<const SlicePredictor>>
tryLoadPredictor(std::istream &is, std::string *error = nullptr);

/**
 * Reload a predictor saved with savePredictor().
 * fatal()s on malformed input (routes through tryLoadPredictor()).
 */
std::shared_ptr<const SlicePredictor> loadPredictor(std::istream &is);

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_PERSIST_HH
