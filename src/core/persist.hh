/**
 * @file
 * Predictor persistence: a trained SlicePredictor — the slice design,
 * the feature list, and the model coefficients — serialised to a
 * single text stream, so the offline flow's output can ship with a
 * driver and be reloaded without retraining.
 */

#ifndef PREDVFS_CORE_PERSIST_HH
#define PREDVFS_CORE_PERSIST_HH

#include <istream>
#include <memory>
#include <ostream>

#include "core/predictor.hh"

namespace predvfs {
namespace core {

/** Write @p predictor to @p os (textual, versioned). */
void savePredictor(std::ostream &os, const SlicePredictor &predictor);

/**
 * Reload a predictor saved with savePredictor().
 * fatal()s on malformed input.
 */
std::shared_ptr<const SlicePredictor> loadPredictor(std::istream &is);

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_PERSIST_HH
