#include "core/pid_controller.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace predvfs {
namespace core {

namespace {

DvfsModelConfig
withMargin(DvfsModelConfig config, double margin)
{
    config.marginFraction = margin;
    return config;
}

} // namespace

PidController::PidController(const power::OperatingPointTable &table,
                             double f_nominal_hz, DvfsModelConfig dvfs,
                             PidConfig pid)
    : model(table, f_nominal_hz, withMargin(dvfs, pid.marginFraction)),
      pidConfig(pid)
{
}

Decision
PidController::decide(const PreparedJob &job, std::size_t current_level,
                      double budget_seconds)
{
    (void)job;
    Decision d;
    if (!primed) {
        // No history yet: run the first job at nominal, the only safe
        // choice a reactive scheme has.
        d.level = model.table().nominalIndex();
        d.predictedNominalSeconds = 0.0;
        return d;
    }
    const DvfsModel::Choice choice =
        model.chooseLevel(prediction, 0.0, current_level,
                          budget_seconds);
    d.level = choice.level;
    d.predictedNominalSeconds = prediction;
    return d;
}

void
PidController::observe(const PreparedJob &job, double nominal_seconds)
{
    (void)job;
    if (!primed) {
        primed = true;
        prediction = nominal_seconds;
        integral = 0.0;
        prevError = 0.0;
        return;
    }
    const double error = nominal_seconds - prediction;
    integral += error;
    prediction += pidConfig.kp * error + pidConfig.ki * integral +
        pidConfig.kd * (error - prevError);
    prevError = error;
    if (prediction < 0.0)
        prediction = 0.0;
}

void
PidController::reset()
{
    primed = false;
    prediction = 0.0;
    integral = 0.0;
    prevError = 0.0;
}

PidConfig
PidController::tune(const std::vector<double> &nominal_seconds,
                    double margin_fraction)
{
    util::panicIf(nominal_seconds.size() < 3,
                  "PidController::tune: need at least 3 samples");

    const std::vector<double> kp_grid = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
    const std::vector<double> ki_grid = {0.0, 0.02, 0.05, 0.1};
    const std::vector<double> kd_grid = {0.0, 0.1, 0.2, 0.4};

    PidConfig best;
    best.marginFraction = margin_fraction;
    double best_mse = std::numeric_limits<double>::infinity();

    for (double kp : kp_grid) {
        for (double ki : ki_grid) {
            for (double kd : kd_grid) {
                double prediction = nominal_seconds[0];
                double integral = 0.0;
                double prev_error = 0.0;
                double sse = 0.0;
                std::size_t count = 0;
                for (std::size_t t = 1; t < nominal_seconds.size();
                     ++t) {
                    const double err_eval =
                        nominal_seconds[t] - prediction;
                    sse += err_eval * err_eval;
                    ++count;
                    integral += err_eval;
                    prediction += kp * err_eval + ki * integral +
                        kd * (err_eval - prev_error);
                    prev_error = err_eval;
                    if (prediction < 0.0)
                        prediction = 0.0;
                }
                const double mse = sse / static_cast<double>(count);
                if (mse < best_mse) {
                    best_mse = mse;
                    best.kp = kp;
                    best.ki = ki;
                    best.kd = kd;
                }
            }
        }
    }
    return best;
}

} // namespace core
} // namespace predvfs
