/**
 * @file
 * The offline predictor-generation flow (paper Figure 6, design-time
 * part):
 *
 *   1. static analysis discovers FSMs/counters and enumerates features;
 *   2. the instrumented design is simulated over the training jobs;
 *   3. the asymmetric-penalty Lasso model is fitted, sweeping the
 *      sparsity weight gamma and keeping the sparsest model whose
 *      validation loss stays within tolerance of the best
 *      ("empirically determined to reduce the number of non-zero
 *      coefficients without impacting modeling accuracy too much");
 *   4. the surviving features are refitted without shrinkage (still
 *      with the asymmetric penalty, so predictions stay conservative);
 *   5. the hardware slice computing those features is generated.
 */

#ifndef PREDVFS_CORE_FLOW_HH
#define PREDVFS_CORE_FLOW_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/predictor.hh"
#include "opt/lasso.hh"
#include "rtl/slicer.hh"

namespace predvfs {
namespace core {

/** Tunables of the offline flow. */
struct FlowConfig
{
    /** Under-prediction penalty weight (paper: alpha > 1). */
    double alpha = 8.0;

    /**
     * Sparsity weights to sweep, as multiples of the training-sample
     * count (the loss term scales with it).
     */
    std::vector<double> gammaSweep = {
        0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0,
    };

    /**
     * A sparser model is preferred as long as its validation loss is
     * within this relative factor of the best model's.
     */
    double accuracyTolerance = 0.30;

    /**
     * Absolute loss allowance on top of the relative tolerance, in
     * units of the (mean-scaled) asymmetric loss. Near-exact fits
     * make any relative tolerance moot; this floor lets the sweep
     * trade a ~1% RMS error for a much sparser model, which is the
     * paper's "without impacting modeling accuracy too much".
     */
    double absoluteLossFloor = 1.5e-4;

    /** Fraction of training jobs held out for gamma selection. */
    double validationFraction = 0.25;

    /** Coefficient magnitude (standardised space) counted as zero. */
    double coefficientThreshold = 1e-4;

    /** Slicing mode (RTL vs HLS). */
    rtl::SliceOptions sliceOptions;

    /**
     * Optional restriction of the candidate feature set (ablations:
     * e.g. train on state-transition counts only). Null keeps every
     * feature the analysis discovers.
     */
    std::function<bool(const rtl::FeatureSpec &)> featureFilter;
};

/** What the flow learned; feeds the case-study and overhead benches. */
struct FlowReport
{
    std::size_t featuresDetected = 0;   //!< After static analysis.
    std::size_t featuresSelected = 0;   //!< Non-zero after Lasso.
    std::size_t implicitStates = 0;     //!< Unmodellable states found.
    double gammaChosen = 0.0;

    /** Training-set relative error extremes (fraction, signed). */
    double trainMaxOverError = 0.0;     //!< Most positive error.
    double trainMaxUnderError = 0.0;    //!< Most negative error.

    std::vector<rtl::FeatureSpec> selectedFeatures;
};

/** Result of the offline flow. */
struct FlowResult
{
    std::shared_ptr<const SlicePredictor> predictor;
    FlowReport report;
};

/**
 * Run the full offline flow for one accelerator design.
 *
 * @param design     Validated accelerator design.
 * @param train_jobs Training workload (paper Table 3 train column).
 * @param config     Flow tunables.
 */
FlowResult buildPredictor(const rtl::Design &design,
                          const std::vector<rtl::JobInput> &train_jobs,
                          const FlowConfig &config = {});

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_FLOW_HH
