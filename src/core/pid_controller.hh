/**
 * @file
 * PID-based reactive DVFS controller (the paper's `pid` comparison
 * scheme, Section 4.2): a control-theory predictor over the history of
 * job execution times, with a safety margin on top of its output.
 * Reacting to history makes it lag one job behind every spike
 * (Figure 3), which is what the predictive scheme fixes.
 */

#ifndef PREDVFS_CORE_PID_CONTROLLER_HH
#define PREDVFS_CORE_PID_CONTROLLER_HH

#include <vector>

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** PID gains and margin. */
struct PidConfig
{
    double kp = 0.6;   //!< Proportional gain.
    double ki = 0.05;  //!< Integral gain.
    double kd = 0.1;   //!< Derivative gain.

    /** Margin added to the PID output (paper: 10%, chosen to balance
     *  deadline misses and energy). */
    double marginFraction = 0.10;
};

/** Reactive controller driven by prediction error feedback. */
class PidController : public DvfsController
{
  public:
    /**
     * @param table        Operating points of the accelerator.
     * @param f_nominal_hz Nominal clock of the accelerator.
     * @param dvfs         Deadline/switch parameters (margin inside
     *                     this struct is ignored; PidConfig's is used).
     * @param pid          Gains.
     */
    PidController(const power::OperatingPointTable &table,
                  double f_nominal_hz, DvfsModelConfig dvfs,
                  PidConfig pid);

    std::string name() const override { return "pid"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;
    void observe(const PreparedJob &job,
                 double nominal_seconds) override;
    void reset() override;

    /** @return the controller's current raw prediction (seconds). */
    double currentPrediction() const { return prediction; }

    /**
     * Grid-search gains minimising squared prediction error over a
     * training sequence of nominal execution times (the paper tunes
     * each accelerator's PID "to achieve the best prediction
     * accuracy").
     *
     * @param nominal_seconds Training jobs' execution times at f0.
     * @param margin_fraction Margin to embed in the returned config.
     */
    static PidConfig tune(const std::vector<double> &nominal_seconds,
                          double margin_fraction = 0.10);

  private:
    DvfsModel model;
    PidConfig pidConfig;

    bool primed = false;
    double prediction = 0.0;
    double integral = 0.0;
    double prevError = 0.0;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_PID_CONTROLLER_HH
