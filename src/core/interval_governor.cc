#include "core/interval_governor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace predvfs {
namespace core {

IntervalGovernorController::IntervalGovernorController(
    const power::OperatingPointTable &table, double f_nominal_hz,
    double interval_seconds, IntervalGovernorConfig config)
    : table(table),
      fNominal(f_nominal_hz),
      intervalSeconds(interval_seconds),
      config(config),
      targetLevel(table.nominalIndex()),
      lastLevel(table.nominalIndex())
{
    util::panicIf(interval_seconds <= 0.0,
                  "IntervalGovernor: bad interval");
}

Decision
IntervalGovernorController::decide(const PreparedJob &job,
                                   std::size_t current_level,
                                   double budget_seconds)
{
    (void)job;
    (void)current_level;
    (void)budget_seconds;
    Decision d;
    d.level = targetLevel;
    lastLevel = targetLevel;
    return d;
}

void
IntervalGovernorController::observe(const PreparedJob &job,
                                    double nominal_seconds)
{
    (void)job;
    // Utilisation of the past interval at the frequency we ran at.
    const double busy = nominal_seconds * fNominal /
        table[lastLevel].frequencyHz;
    const double util = std::min(1.0, busy / intervalSeconds);

    if (util > config.upThreshold) {
        // simple_ondemand: saturate to the maximum non-boost level.
        targetLevel = table.nominalIndex();
        return;
    }

    // Re-target so the next interval's utilisation would sit at
    // (upThreshold - downDifferential) if the load repeats.
    const double wanted_ratio =
        util / (config.upThreshold - config.downDifferential);
    const double f_required =
        table[lastLevel].frequencyHz * wanted_ratio;

    std::size_t level = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].boost)
            continue;
        level = i;
        if (table[i].frequencyHz >= f_required)
            break;
    }
    targetLevel = level;
}

void
IntervalGovernorController::reset()
{
    targetLevel = table.nominalIndex();
    lastLevel = table.nominalIndex();
}

} // namespace core
} // namespace predvfs
