#include "core/software_predictor.hh"

#include "util/logging.hh"

namespace predvfs {
namespace core {

double
SoftwarePredictorModel::secondsFor(std::uint64_t slice_cycles) const
{
    return static_cast<double>(slice_cycles) * cyclesPerSliceCycle /
        cpuFrequencyHz;
}

double
SoftwarePredictorModel::energyFor(std::uint64_t slice_cycles) const
{
    return cpuPowerWatts * secondsFor(slice_cycles);
}

SoftwarePredictiveController::SoftwarePredictiveController(
    const power::OperatingPointTable &table, double f_nominal_hz,
    DvfsModelConfig dvfs, SoftwarePredictorModel model)
    : dvfsModel(table, f_nominal_hz, dvfs), swModel(model)
{
}

Decision
SoftwarePredictiveController::decide(const PreparedJob &job,
                                     std::size_t current_level,
                                     double budget_seconds)
{
    util::panicIf(job.predictedCycles <= 0.0 && job.cycles > 0,
                  "SoftwarePredictiveController: job has no slice "
                  "prediction");

    const double f0 = dvfsModel.nominalFrequencyHz();
    const double predicted_seconds = job.predictedCycles / f0;
    const double sw_seconds = swModel.secondsFor(job.sliceCycles);

    const DvfsModel::Choice choice = dvfsModel.chooseLevel(
        predicted_seconds, sw_seconds, current_level, budget_seconds);

    Decision d;
    d.level = choice.level;
    d.predictedNominalSeconds = predicted_seconds;
    d.overheadSeconds = sw_seconds;
    d.overheadEnergyJoules = swModel.energyFor(job.sliceCycles);
    return d;
}

} // namespace core
} // namespace predvfs
