/**
 * @file
 * Feature-dataset collection: the "RTL simulation of training jobs"
 * stage of the paper's offline flow (Figure 6). Runs the instrumented
 * accelerator over a job set and tabulates, per job, the feature
 * readouts and the execution time.
 */

#ifndef PREDVFS_CORE_FEATURES_HH
#define PREDVFS_CORE_FEATURES_HH

#include <cstdint>
#include <vector>

#include "opt/matrix.hh"
#include "rtl/analysis.hh"
#include "rtl/design.hh"

namespace predvfs {
namespace core {

/** Per-job profiling results over a feature list. */
struct FeatureDataset
{
    opt::Matrix x;                      //!< Rows = jobs, cols = features.
    opt::Vector y;                      //!< Execution cycles per job.
    std::vector<std::uint64_t> cycles;  //!< Same as y, integral.
    std::vector<double> energyUnits;    //!< Activity units per job.
};

/**
 * Simulate @p jobs on @p design recording @p features.
 *
 * @param design   Validated design (full accelerator or a slice).
 * @param features Features to record.
 * @param jobs     Jobs to profile.
 */
FeatureDataset collectDataset(const rtl::Design &design,
                              const std::vector<rtl::FeatureSpec> &features,
                              const std::vector<rtl::JobInput> &jobs);

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_FEATURES_HH
