/**
 * @file
 * DVFS controller interface and the constant-frequency baseline.
 *
 * Controllers decide one DVFS level per job. They see a PreparedJob —
 * the per-job quantities the simulation pipeline precomputes once
 * (actual cycles from RTL simulation, slice results if a predictor
 * exists) — but each scheme is only entitled to part of it:
 *
 *  - baseline uses nothing;
 *  - pid uses only past observations (observe());
 *  - table uses the job's coarse size parameter;
 *  - prediction uses the slice output (sliceCycles, predictedCycles);
 *  - oracle uses the actual cycle count (it is the upper-bound scheme).
 */

#ifndef PREDVFS_CORE_CONTROLLER_HH
#define PREDVFS_CORE_CONTROLLER_HH

#include <cstdint>
#include <string>

#include "core/dvfs_model.hh"
#include "rtl/design.hh"

namespace predvfs {
namespace core {

/** Everything the pipeline precomputes about one job. */
struct PreparedJob
{
    const rtl::JobInput *input = nullptr;
    std::uint64_t cycles = 0;        //!< Full design at nominal clock.
    double energyUnits = 0.0;        //!< Full design activity.
    std::uint64_t sliceCycles = 0;   //!< 0 when no predictor is used.
    double sliceEnergyUnits = 0.0;
    double predictedCycles = 0.0;    //!< Slice-predicted full cycles.
};

/** A controller's decision for one job. */
struct Decision
{
    std::size_t level = 0;

    /** Predictor execution time charged before the job runs. */
    double overheadSeconds = 0.0;

    /** Predictor energy (activity units at nominal voltage). */
    double overheadEnergyUnits = 0.0;

    /**
     * Predictor energy already expressed in joules (e.g. a software
     * predictor running on a CPU core); added on top of the unit-based
     * overhead above.
     */
    double overheadEnergyJoules = 0.0;

    /** Whether a level change should pay the DVFS switch penalty. */
    bool chargeSwitch = true;

    /** The controller's execution-time estimate at nominal frequency
     *  (for prediction-trace figures); 0 if the scheme has none. */
    double predictedNominalSeconds = 0.0;
};

/** Abstract per-job DVFS policy. */
class DvfsController
{
  public:
    virtual ~DvfsController() = default;

    /** Scheme name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /**
     * Pick the level for the next job.
     *
     * @param job            The prepared job about to run.
     * @param current_level  Level the accelerator currently runs at.
     * @param budget_seconds Time remaining until this job's deadline.
     *        Usually the full period; less when the previous job ran
     *        past its own deadline (jobs are periodic, Figure 1).
     */
    virtual Decision decide(const PreparedJob &job,
                            std::size_t current_level,
                            double budget_seconds) = 0;

    /**
     * Feed back the job's actual execution time at nominal frequency
     * (what a cycle counter would report, rescaled to the nominal
     * clock). Reactive schemes learn from this.
     */
    virtual void observe(const PreparedJob &job, double nominal_seconds);

    /** Forget history (start of a new stream). */
    virtual void reset();
};

/**
 * The paper's baseline: constant voltage and frequency (the level the
 * accelerator was synthesised at), no decisions at all.
 */
class ConstantController : public DvfsController
{
  public:
    /** @param level Level to hold; usually the nominal index. */
    explicit ConstantController(std::size_t level);

    std::string name() const override { return "baseline"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;

  private:
    std::size_t fixedLevel;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_CONTROLLER_HH
