/**
 * @file
 * The runtime execution-time predictor: a hardware slice plus a linear
 * model over the features the slice computes (paper Figure 6, online
 * part). Running the slice on a job's input yields the feature vector;
 * one dot product yields the predicted cycle count of the full
 * accelerator at nominal frequency.
 */

#ifndef PREDVFS_CORE_PREDICTOR_HH
#define PREDVFS_CORE_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "opt/matrix.hh"
#include "rtl/instrument.hh"
#include "rtl/interpreter.hh"
#include "rtl/slicer.hh"

namespace predvfs {
namespace core {

/** Everything a slice run produces for one job. */
struct SliceRun
{
    std::uint64_t sliceCycles = 0;   //!< Slice latency (its own clock).
    double sliceEnergyUnits = 0.0;   //!< Slice activity units.
    double predictedCycles = 0.0;    //!< Predicted full-design cycles.
};

/**
 * A trained slice-based predictor.
 *
 * Immutable once constructed by the PredictorFlow; safe to share
 * between controllers.
 */
class SlicePredictor
{
  public:
    /**
     * @param slice     Slicer output (design + rebased features).
     * @param beta      Raw-space coefficients, aligned with
     *                  slice.features.
     * @param intercept Raw-space intercept.
     */
    SlicePredictor(rtl::SliceResult slice, opt::Vector beta,
                   double intercept);

    /** Run the slice on a job's input and predict execution time. */
    SliceRun run(const rtl::JobInput &job) const;

    /**
     * Like run(), but record into a caller-supplied instrumenter
     * (reset on entry). The shared member instrumenter is the only
     * mutable state run() touches, so this is the reentrant entry
     * point parallel prepare uses with one instrumenter per worker.
     */
    SliceRun runWith(const rtl::JobInput &job,
                     rtl::Instrumenter &instr) const;

    /** Build an instrumenter for this slice (per-thread scratch). */
    rtl::Instrumenter makeInstrumenter() const;

    /** Predict from an already-recorded feature vector. */
    double predictCycles(const rtl::FeatureValues &values) const;

    /** @return the slice design (for area/energy reporting). */
    const rtl::SliceResult &slice() const { return sliceResult; }

    /** @return the model coefficients. */
    const opt::Vector &coefficients() const { return betaRaw; }

    /** @return the model intercept. */
    double intercept() const { return interceptRaw; }

    /** @return number of features the slice computes. */
    std::size_t numFeatures() const { return betaRaw.size(); }

    /**
     * Content fingerprint of the predictor: slice design text,
     * coefficients, and intercept. Computed once at construction (the
     * object is immutable) so per-prepare consumers — the job cache's
     * stream keys — never re-serialise the slice design.
     */
    std::uint64_t fingerprint() const { return contentFp; }

  private:
    rtl::SliceResult sliceResult;
    opt::Vector betaRaw;
    double interceptRaw;
    std::uint64_t contentFp;
    rtl::Interpreter sliceInterp;
    // Instrumenter is stateful; mutable because run() is logically
    // const (the accumulators are reset on entry).
    mutable rtl::Instrumenter sliceInstr;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_PREDICTOR_HH
