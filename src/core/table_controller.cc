#include "core/table_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace predvfs {
namespace core {

TableController::TableController(
    const power::OperatingPointTable &table, double f_nominal_hz,
    DvfsModelConfig dvfs,
    const std::vector<std::pair<std::size_t, double>> &training_seconds)
    : model(table, f_nominal_hz, dvfs)
{
    util::panicIf(training_seconds.empty(),
                  "TableController: empty training profile");
    for (const auto &[items, seconds] : training_seconds) {
        const int cls = sizeClass(items);
        auto it = worstCaseSeconds.find(cls);
        if (it == worstCaseSeconds.end())
            worstCaseSeconds[cls] = seconds;
        else
            it->second = std::max(it->second, seconds);
        globalWorstSeconds = std::max(globalWorstSeconds, seconds);
    }
}

int
TableController::sizeClass(std::size_t item_count)
{
    int cls = 0;
    while (item_count > 1) {
        item_count >>= 1;
        ++cls;
    }
    return cls;
}

Decision
TableController::decide(const PreparedJob &job, std::size_t current_level,
                        double budget_seconds)
{
    util::panicIf(!job.input, "TableController: job without input");
    const int cls = sizeClass(job.input->items.size());
    const auto it = worstCaseSeconds.find(cls);
    // A size class never profiled falls back to the global worst case
    // — the conservative choice a driver table would ship with.
    const double worst = it != worstCaseSeconds.end()
        ? it->second
        : globalWorstSeconds;

    const DvfsModel::Choice choice =
        model.chooseLevel(worst, 0.0, current_level, budget_seconds);
    Decision d;
    d.level = choice.level;
    d.predictedNominalSeconds = worst;
    return d;
}

} // namespace core
} // namespace predvfs
