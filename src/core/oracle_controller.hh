/**
 * @file
 * Oracle DVFS controller (paper Figure 13): for every job it knows the
 * actual execution time in advance and pays no slice or switching
 * overhead. It is the energy lower bound any per-job scheme with the
 * same discrete levels could reach.
 */

#ifndef PREDVFS_CORE_ORACLE_CONTROLLER_HH
#define PREDVFS_CORE_ORACLE_CONTROLLER_HH

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** Perfect-knowledge, zero-overhead controller. */
class OracleController : public DvfsController
{
  public:
    OracleController(const power::OperatingPointTable &table,
                     double f_nominal_hz, DvfsModelConfig dvfs);

    std::string name() const override { return "oracle"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;

  private:
    DvfsModel model;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_ORACLE_CONTROLLER_HH
