#include "core/features.hh"

#include "rtl/instrument.hh"
#include "rtl/interpreter.hh"
#include "util/logging.hh"

namespace predvfs {
namespace core {

FeatureDataset
collectDataset(const rtl::Design &design,
               const std::vector<rtl::FeatureSpec> &features,
               const std::vector<rtl::JobInput> &jobs)
{
    util::panicIf(jobs.empty(), "collectDataset: no jobs");

    rtl::Interpreter interp(design);
    rtl::Instrumenter instr(design, features);

    FeatureDataset ds;
    ds.x = opt::Matrix(jobs.size(), features.size());
    ds.y = opt::Vector(jobs.size());
    ds.cycles.reserve(jobs.size());
    ds.energyUnits.reserve(jobs.size());

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        instr.reset();
        const rtl::JobResult result = interp.run(jobs[j], &instr);
        const rtl::FeatureValues &values = instr.values();
        for (std::size_t c = 0; c < features.size(); ++c)
            ds.x.at(j, c) = values[c];
        ds.y[j] = static_cast<double>(result.cycles);
        ds.cycles.push_back(result.cycles);
        ds.energyUnits.push_back(result.energyUnits);
    }
    return ds;
}

} // namespace core
} // namespace predvfs
