/**
 * @file
 * The paper's contribution: the prediction-based DVFS controller. For
 * every job the hardware slice runs first (its latency and energy are
 * charged as overhead), the linear model converts the slice's feature
 * readout into a predicted execution time, and the DVFS model picks
 * the lowest level that still meets the deadline after overheads.
 */

#ifndef PREDVFS_CORE_PREDICTIVE_CONTROLLER_HH
#define PREDVFS_CORE_PREDICTIVE_CONTROLLER_HH

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** Look-ahead controller driven by the slice predictor. */
class PredictiveController : public DvfsController
{
  public:
    /**
     * @param table        Operating points (include the boost level
     *                     and set dvfs.allowBoost for the Figure 14
     *                     configuration).
     * @param f_nominal_hz Nominal clock (slice and prediction are both
     *                     referenced to it).
     * @param dvfs         Deadline/margin/switch parameters. With
     *                     ignoreOverheads set this becomes the
     *                     "prediction w/o overhead" scheme of
     *                     Figure 13.
     */
    PredictiveController(const power::OperatingPointTable &table,
                         double f_nominal_hz, DvfsModelConfig dvfs);

    std::string name() const override;
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;

  private:
    DvfsModel model;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_PREDICTIVE_CONTROLLER_HH
