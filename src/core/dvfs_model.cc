#include "core/dvfs_model.hh"

#include "util/logging.hh"

namespace predvfs {
namespace core {

using util::panicIf;

DvfsModel::DvfsModel(const power::OperatingPointTable &table,
                     double f_nominal_hz, const DvfsModelConfig &config)
    : opTable(table), fNominal(f_nominal_hz), modelConfig(config)
{
    panicIf(fNominal <= 0.0, "DvfsModel: bad nominal frequency");
    panicIf(config.deadlineSeconds <= 0.0, "DvfsModel: bad deadline");
    panicIf(config.marginFraction < 0.0, "DvfsModel: negative margin");
}

DvfsModel::Choice
DvfsModel::chooseLevel(double predicted_nominal_seconds,
                       double slice_seconds, std::size_t current_level,
                       double budget_seconds) const
{
    panicIf(current_level >= opTable.size(),
            "chooseLevel: bad current level ", current_level);
    const double budget = budget_seconds > 0.0
        ? budget_seconds
        : modelConfig.deadlineSeconds;

    const double padded = predicted_nominal_seconds *
        (1.0 + modelConfig.marginFraction);
    const double slice =
        modelConfig.ignoreOverheads ? 0.0 : slice_seconds;
    const double switch_cost =
        modelConfig.ignoreOverheads ? 0.0
                                    : modelConfig.switchTimeSeconds;

    // Walk levels from slowest to fastest; the first level whose total
    // time fits the budget implements the paper's "round up to the
    // nearest frequency level" with overheads deducted from the
    // budget. Staying at the current level avoids the switch penalty,
    // which the walk naturally accounts for per candidate.
    for (std::size_t level = 0; level < opTable.size(); ++level) {
        const auto &op = opTable[level];
        if (op.boost && !modelConfig.allowBoost)
            continue;
        const double exec =
            padded * fNominal / op.frequencyHz;
        const double total = slice +
            (level == current_level ? 0.0 : switch_cost) + exec;
        if (total <= budget) {
            // Prefer boost only when no regular level works.
            if (op.boost) {
                return {level, true, level != current_level};
            }
            return {level, true, level != current_level};
        }
    }

    // Nothing fits: run as fast as permitted and accept the miss.
    std::size_t fastest = opTable.nominalIndex();
    if (modelConfig.allowBoost && opTable.hasBoost())
        fastest = opTable.size() - 1;
    return {fastest, false, fastest != current_level};
}

} // namespace core
} // namespace predvfs
