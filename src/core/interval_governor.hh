/**
 * @file
 * Interval-based DVFS governor, modelled on the Linux devfreq
 * simple_ondemand policy the paper discusses in Sections 2.4/5.1:
 * measure the previous interval's utilisation at the current
 * frequency; if it exceeds an up-threshold jump to the maximum level,
 * otherwise re-target so utilisation lands near the threshold. No
 * notion of deadlines, no look-ahead — which is exactly why it
 * struggles with workloads that change job to job.
 */

#ifndef PREDVFS_CORE_INTERVAL_GOVERNOR_HH
#define PREDVFS_CORE_INTERVAL_GOVERNOR_HH

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** simple_ondemand-style thresholds. */
struct IntervalGovernorConfig
{
    /** Utilisation above which the governor jumps to maximum. */
    double upThreshold = 0.90;

    /** Hysteresis subtracted when scaling back down. */
    double downDifferential = 0.05;
};

/** Reactive utilisation-driven governor (no deadline awareness). */
class IntervalGovernorController : public DvfsController
{
  public:
    IntervalGovernorController(const power::OperatingPointTable &table,
                               double f_nominal_hz,
                               double interval_seconds,
                               IntervalGovernorConfig config = {});

    std::string name() const override { return "interval"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;
    void observe(const PreparedJob &job,
                 double nominal_seconds) override;
    void reset() override;

  private:
    const power::OperatingPointTable &table;
    double fNominal;
    double intervalSeconds;
    IntervalGovernorConfig config;

    std::size_t targetLevel;
    std::size_t lastLevel;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_INTERVAL_GOVERNOR_HH
