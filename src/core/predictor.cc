#include "core/predictor.hh"

#include <sstream>

#include "rtl/serialize.hh"
#include "util/logging.hh"

namespace predvfs {
namespace core {

namespace {

/** 64-bit FNV-1a over the predictor's content (once, at build). */
std::uint64_t
contentHash(const rtl::Design &design, const opt::Vector &beta,
            double intercept)
{
    std::ostringstream os;
    rtl::writeDesign(os, design);
    const std::string text = os.str();

    std::uint64_t h = 1469598103934665603ull;
    const auto fold = [&h](const void *data, std::size_t n) {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    fold(text.data(), text.size());
    fold(beta.values().data(), beta.size() * sizeof(double));
    fold(&intercept, sizeof(intercept));
    return h;
}

} // namespace

SlicePredictor::SlicePredictor(rtl::SliceResult slice, opt::Vector beta,
                               double intercept)
    : sliceResult(std::move(slice)),
      betaRaw(std::move(beta)),
      interceptRaw(intercept),
      contentFp(contentHash(sliceResult.design, betaRaw, interceptRaw)),
      sliceInterp(sliceResult.design),
      sliceInstr(sliceResult.design, sliceResult.features)
{
    util::panicIf(betaRaw.size() != sliceResult.features.size(),
                  "SlicePredictor: coefficient/feature count mismatch (",
                  betaRaw.size(), " vs ", sliceResult.features.size(),
                  ")");
}

double
SlicePredictor::predictCycles(const rtl::FeatureValues &values) const
{
    util::panicIf(values.size() != betaRaw.size(),
                  "predictCycles: feature vector size mismatch");
    double y = interceptRaw;
    for (std::size_t i = 0; i < values.size(); ++i)
        y += betaRaw[i] * values[i];
    return y;
}

SliceRun
SlicePredictor::run(const rtl::JobInput &job) const
{
    return runWith(job, sliceInstr);
}

SliceRun
SlicePredictor::runWith(const rtl::JobInput &job,
                        rtl::Instrumenter &instr) const
{
    instr.reset();
    const rtl::JobResult result = sliceInterp.run(job, &instr);

    SliceRun out;
    out.sliceCycles = result.cycles;
    out.sliceEnergyUnits = result.energyUnits;
    out.predictedCycles = predictCycles(instr.values());
    return out;
}

rtl::Instrumenter
SlicePredictor::makeInstrumenter() const
{
    return rtl::Instrumenter(sliceResult.design, sliceResult.features);
}

} // namespace core
} // namespace predvfs
