#include "core/watchdog.hh"

#include "util/logging.hh"

namespace predvfs {
namespace core {

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy: return "healthy";
      case HealthState::Warning: return "warning";
      case HealthState::Tripped: return "tripped";
      case HealthState::SafeMode: return "safe-mode";
    }
    return "?";
}

PredictionWatchdog::PredictionWatchdog(WatchdogConfig config)
    : cfg(config)
{
    using util::panicIf;
    panicIf(cfg.ewmaAlpha <= 0.0 || cfg.ewmaAlpha > 1.0,
            "PredictionWatchdog: ewmaAlpha outside (0, 1]");
    panicIf(cfg.repromoteCleanStreak == 0,
            "PredictionWatchdog: repromoteCleanStreak must be "
            "positive");
}

void
PredictionWatchdog::observe(double predicted_seconds,
                            double actual_seconds, bool missed_deadline)
{
    const double rel = actual_seconds > 0.0
        ? (actual_seconds - predicted_seconds) / actual_seconds
        : 0.0;
    ewma = cfg.ewmaAlpha * rel + (1.0 - cfg.ewmaAlpha) * ewma;
    underRun = rel >= cfg.streakUnderFraction ? underRun + 1 : 0;
    missRun = missed_deadline ? missRun + 1 : 0;
    const bool clean =
        !missed_deadline && rel < cfg.cleanUnderFraction;
    cleanRun = clean ? cleanRun + 1 : 0;
    observed += 1;

    const auto rung = [](HealthState s) {
        return static_cast<int>(s);
    };

    // Escalation: worst satisfied condition wins, immediately.
    HealthState target = current;
    if (missRun >= cfg.safeMissStreak) {
        target = HealthState::SafeMode;
    } else if (rung(current) < rung(HealthState::Tripped) &&
               (underRun >= cfg.tripUnderStreak ||
                missRun >= cfg.tripMissStreak ||
                ewma >= cfg.tripEwmaUnderFraction)) {
        target = HealthState::Tripped;
    } else if (current == HealthState::Healthy &&
               (rel >= cfg.warnSingleUnderFraction ||
                ewma >= cfg.warnEwmaUnderFraction ||
                missRun >= cfg.warnMissStreak)) {
        target = HealthState::Warning;
    }

    if (rung(target) > rung(current)) {
        current = target;
        cleanRun = 0;
        ups += 1;
        return;
    }

    // De-escalation: one rung per clean streak (hysteresis).
    if (current != HealthState::Healthy &&
        cleanRun >= cfg.repromoteCleanStreak) {
        current = static_cast<HealthState>(rung(current) - 1);
        cleanRun = 0;
        downs += 1;
    }
}

void
PredictionWatchdog::reset()
{
    current = HealthState::Healthy;
    ewma = 0.0;
    underRun = 0;
    missRun = 0;
    cleanRun = 0;
    observed = 0;
    ups = 0;
    downs = 0;
}

} // namespace core
} // namespace predvfs
