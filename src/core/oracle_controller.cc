#include "core/oracle_controller.hh"

namespace predvfs {
namespace core {

namespace {

DvfsModelConfig
oracleConfig(DvfsModelConfig config)
{
    // The oracle has no prediction error and no overheads by
    // definition (paper: "always sets a best DVFS level for each job,
    // and without DVFS switching overhead").
    config.marginFraction = 0.0;
    config.ignoreOverheads = true;
    return config;
}

} // namespace

OracleController::OracleController(const power::OperatingPointTable &table,
                                   double f_nominal_hz,
                                   DvfsModelConfig dvfs)
    : model(table, f_nominal_hz, oracleConfig(dvfs))
{
}

Decision
OracleController::decide(const PreparedJob &job, std::size_t current_level,
                         double budget_seconds)
{
    const double actual_seconds = static_cast<double>(job.cycles) /
        model.nominalFrequencyHz();
    const DvfsModel::Choice choice =
        model.chooseLevel(actual_seconds, 0.0, current_level,
                          budget_seconds);
    Decision d;
    d.level = choice.level;
    d.chargeSwitch = false;
    d.predictedNominalSeconds = actual_seconds;
    return d;
}

} // namespace core
} // namespace predvfs
