#include "core/predictive_controller.hh"

#include "util/logging.hh"

namespace predvfs {
namespace core {

PredictiveController::PredictiveController(
    const power::OperatingPointTable &table, double f_nominal_hz,
    DvfsModelConfig dvfs)
    : model(table, f_nominal_hz, dvfs)
{
}

std::string
PredictiveController::name() const
{
    if (model.config().ignoreOverheads)
        return "prediction w/o overhead";
    if (model.config().allowBoost)
        return "prediction w/ boost";
    return "prediction";
}

Decision
PredictiveController::decide(const PreparedJob &job,
                             std::size_t current_level,
                             double budget_seconds)
{
    util::panicIf(job.predictedCycles <= 0.0 && job.cycles > 0,
                  "PredictiveController: job has no slice prediction "
                  "(was the stream prepared with a predictor?)");

    const double f0 = model.nominalFrequencyHz();
    const double predicted_seconds = job.predictedCycles / f0;
    const double slice_seconds =
        static_cast<double>(job.sliceCycles) / f0;

    const DvfsModel::Choice choice =
        model.chooseLevel(predicted_seconds, slice_seconds,
                          current_level, budget_seconds);

    Decision d;
    d.level = choice.level;
    d.predictedNominalSeconds = predicted_seconds;
    if (!model.config().ignoreOverheads) {
        d.overheadSeconds = slice_seconds;
        d.overheadEnergyUnits = job.sliceEnergyUnits;
    } else {
        d.chargeSwitch = false;
    }
    return d;
}

} // namespace core
} // namespace predvfs
