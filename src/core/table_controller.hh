/**
 * @file
 * Table-based DVFS controller (paper Section 2.4: e.g. the Samsung
 * Exynos MFC driver). A lookup table indexed by a coarse-grained job
 * parameter — we use the work-item count, the analogue of video
 * resolution or buffer size — maps to the worst-case execution time
 * profiled for that class, and the level is set for that worst case.
 * It never misses on inputs like its profile, but burns the slack of
 * every easier-than-worst-case job.
 */

#ifndef PREDVFS_CORE_TABLE_CONTROLLER_HH
#define PREDVFS_CORE_TABLE_CONTROLLER_HH

#include <map>

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** Worst-case-per-size-class controller. */
class TableController : public DvfsController
{
  public:
    /**
     * @param table            Operating points.
     * @param f_nominal_hz     Nominal clock.
     * @param dvfs             Deadline/switch parameters.
     * @param training_seconds Per-training-job (item count, nominal
     *                         execution seconds) pairs used to build
     *                         the worst-case table.
     */
    TableController(
        const power::OperatingPointTable &table, double f_nominal_hz,
        DvfsModelConfig dvfs,
        const std::vector<std::pair<std::size_t, double>>
            &training_seconds);

    std::string name() const override { return "table"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;

    /** Coarse size class of a job: log2 bucket of its item count. */
    static int sizeClass(std::size_t item_count);

  private:
    DvfsModel model;
    std::map<int, double> worstCaseSeconds;
    double globalWorstSeconds = 0.0;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_TABLE_CONTROLLER_HH
