#include "core/guarded_controller.hh"

#include <algorithm>

#include "util/logging.hh"

namespace predvfs {
namespace core {

GuardedPredictiveController::GuardedPredictiveController(
    const power::OperatingPointTable &table, double f_nominal_hz,
    DvfsModelConfig dvfs, PidConfig pid, WatchdogConfig watchdog,
    GuardedConfig guarded)
    : inner(table, f_nominal_hz, dvfs),
      fallback(table, f_nominal_hz, dvfs, pid),
      model(table, f_nominal_hz, dvfs),
      dog(watchdog),
      cfg(guarded)
{
    util::panicIf(cfg.historyAlpha <= 0.0 || cfg.historyAlpha > 1.0,
                  "GuardedPredictiveController: historyAlpha outside "
                  "(0, 1]");
}

std::size_t
GuardedPredictiveController::safeLevel() const
{
    if (model.config().allowBoost && model.table().hasBoost())
        return model.table().size() - 1;
    return model.table().nominalIndex();
}

Decision
GuardedPredictiveController::decideDegraded(const PreparedJob &job,
                                            std::size_t current_level,
                                            double budget_seconds,
                                            bool use_fallback)
{
    const double f0 = model.nominalFrequencyHz();
    const double slice_seconds =
        static_cast<double>(job.sliceCycles) / f0;

    // Distrust-but-verify: keep using the slice, floored with what
    // jobs have actually been costing lately, with the margin opened
    // up in proportion to how wrong predictions have been running.
    // Once tripped, additionally floor with the PID fallback's
    // estimate: the decision can then only miss when the slice, the
    // recent history, and the PID all under-predict at once.
    double predicted = job.predictedCycles / f0;
    if (haveRecent && cfg.historyFloorFraction > 0.0)
        predicted = std::max(
            predicted, cfg.historyFloorFraction * recentActual);
    if (use_fallback)
        predicted = std::max(predicted,
                             fallback.currentPrediction());
    const double extra = std::min(
        cfg.maxWarningMargin,
        cfg.warningMarginBoost +
            cfg.warningEwmaGain * std::max(0.0, dog.ewmaUnderError()));

    const DvfsModel::Choice choice =
        model.chooseLevel(predicted * (1.0 + extra), slice_seconds,
                          current_level, budget_seconds);

    Decision d;
    d.level = choice.level;
    d.predictedNominalSeconds = predicted;
    d.overheadSeconds = slice_seconds;
    d.overheadEnergyUnits = job.sliceEnergyUnits;
    return d;
}

Decision
GuardedPredictiveController::decide(const PreparedJob &job,
                                    std::size_t current_level,
                                    double budget_seconds)
{
    // Close out the previous job: a shrunken budget means it overran
    // its deadline (jobs are periodic), so the miss signal is exact.
    if (pendingValid) {
        const bool missed = budget_seconds <
            model.config().deadlineSeconds * (1.0 - 1e-12);
        dog.observe(pendingPredicted, pendingActual, missed);
        pendingValid = false;
    }

    const double f0 = model.nominalFrequencyHz();
    const double slice_seconds =
        static_cast<double>(job.sliceCycles) / f0;
    pendingPredicted = job.predictedCycles / f0;

    Decision d;
    switch (dog.state()) {
      case HealthState::Healthy:
        counters.healthyJobs += 1;
        return inner.decide(job, current_level, budget_seconds);
      case HealthState::Warning:
        counters.warningJobs += 1;
        return decideDegraded(job, current_level, budget_seconds,
                              /*use_fallback=*/false);
      case HealthState::Tripped:
        counters.fallbackJobs += 1;
        return decideDegraded(job, current_level, budget_seconds,
                              /*use_fallback=*/true);
      case HealthState::SafeMode:
        counters.safeModeJobs += 1;
        d.level = safeLevel();
        d.predictedNominalSeconds = pendingPredicted;
        d.overheadSeconds = slice_seconds;
        d.overheadEnergyUnits = job.sliceEnergyUnits;
        return d;
    }
    util::panic("GuardedPredictiveController: bad health state");
    return d;
}

void
GuardedPredictiveController::observe(const PreparedJob &job,
                                     double nominal_seconds)
{
    // Keep the fallback's history warm so a trip hands over a primed
    // controller instead of a cold one.
    fallback.observe(job, nominal_seconds);
    pendingActual = nominal_seconds;
    pendingValid = true;
    recentActual = haveRecent
        ? cfg.historyAlpha * nominal_seconds +
            (1.0 - cfg.historyAlpha) * recentActual
        : nominal_seconds;
    haveRecent = true;
}

void
GuardedPredictiveController::reset()
{
    inner.reset();
    fallback.reset();
    dog.reset();
    counters = GuardedStats{};
    pendingValid = false;
    pendingPredicted = 0.0;
    pendingActual = 0.0;
    haveRecent = false;
    recentActual = 0.0;
}

} // namespace core
} // namespace predvfs
