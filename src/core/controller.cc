#include "core/controller.hh"

namespace predvfs {
namespace core {

void
DvfsController::observe(const PreparedJob &job, double nominal_seconds)
{
    (void)job;
    (void)nominal_seconds;
}

void
DvfsController::reset()
{
}

ConstantController::ConstantController(std::size_t level)
    : fixedLevel(level)
{
}

Decision
ConstantController::decide(const PreparedJob &job,
                           std::size_t current_level,
                           double budget_seconds)
{
    (void)job;
    (void)current_level;
    (void)budget_seconds;
    Decision d;
    d.level = fixedLevel;
    return d;
}

} // namespace core
} // namespace predvfs
