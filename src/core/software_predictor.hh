/**
 * @file
 * Software-based prediction (paper Section 4.5, "Software-based
 * Predictors"): when an accelerator has a software implementation of
 * its function (an HLS source, or e.g. ffmpeg for H.264), the sliced
 * feature computation can run on a CPU core instead of a dedicated
 * hardware slice — no area overhead at all, at the cost of a slower,
 * more energy-hungry prediction step. The paper reports trying this
 * for H.264 with good accuracy but omits the numbers for space;
 * bench_ext_software_predictor generates that missing comparison.
 */

#ifndef PREDVFS_CORE_SOFTWARE_PREDICTOR_HH
#define PREDVFS_CORE_SOFTWARE_PREDICTOR_HH

#include "core/controller.hh"

namespace predvfs {
namespace core {

/** Cost model of running the sliced computation on a CPU core. */
struct SoftwarePredictorModel
{
    /** Clock of the (little) core running the predictor. */
    double cpuFrequencyHz = 1.2e9;

    /**
     * CPU cycles per simulated slice cycle: software re-implements
     * the control walk with loads, branches, and table lookups where
     * hardware uses dedicated logic.
     */
    double cyclesPerSliceCycle = 5.0;

    /** Core power while running the predictor (watts). */
    double cpuPowerWatts = 0.12;

    /** Wall-clock time of a software prediction (seconds). */
    double secondsFor(std::uint64_t slice_cycles) const;

    /** CPU energy of a software prediction (joules). */
    double energyFor(std::uint64_t slice_cycles) const;
};

/**
 * Predictive controller whose predictor runs in software on a CPU
 * (the model itself is identical to the hardware-slice one; only the
 * overhead accounting changes, plus zero accelerator-area cost).
 */
class SoftwarePredictiveController : public DvfsController
{
  public:
    SoftwarePredictiveController(const power::OperatingPointTable &table,
                                 double f_nominal_hz,
                                 DvfsModelConfig dvfs,
                                 SoftwarePredictorModel model);

    std::string name() const override { return "sw prediction"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;

  private:
    DvfsModel dvfsModel;
    SoftwarePredictorModel swModel;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_SOFTWARE_PREDICTOR_HH
