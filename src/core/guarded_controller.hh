/**
 * @file
 * GuardedPredictiveController: the predictive controller wrapped in a
 * degradation state machine driven by the PredictionWatchdog.
 *
 *   Healthy  — delegate verbatim to the inner PredictiveController.
 *              With a healthy watchdog the wrapper is bit-for-bit
 *              identical to the plain controller (zero-overhead
 *              wrapper invariant).
 *   Warning  — keep trusting the slice, but floor the prediction with
 *              an EWMA of recent actual execution times and inflate
 *              the margin in proportion to the watchdog's error EWMA.
 *   Tripped  — the slice is persistently wrong; additionally floor
 *              the prediction with the PID fallback's estimate (its
 *              history is kept warm from the start), so the decision
 *              is at least as conservative as both predictors.
 *   SafeMode — repeated misses; run at the maximum permitted level.
 *
 * The slice keeps running (and keeps being charged as overhead) in
 * every state: recovery is detected by the slice becoming accurate
 * again, after which the watchdog re-promotes one rung per clean
 * streak. All level changes flow through the engine's normal
 * switch-time and switch-energy accounting.
 *
 * Deadline misses are detected exactly from the budget the engine
 * passes to decide(): jobs are periodic, so a budget smaller than the
 * configured deadline means the previous job overran. The watchdog is
 * therefore fed at the start of each decide() with the previous job's
 * (prediction, actual, missed) triple — in time to defend the current
 * job. This requires the engine and the controller to agree on the
 * deadline, which Experiment guarantees.
 */

#ifndef PREDVFS_CORE_GUARDED_CONTROLLER_HH
#define PREDVFS_CORE_GUARDED_CONTROLLER_HH

#include "core/pid_controller.hh"
#include "core/predictive_controller.hh"
#include "core/watchdog.hh"

namespace predvfs {
namespace core {

/** Degraded-mode behaviour of the guarded controller. */
struct GuardedConfig
{
    /** Extra margin in Warning, on top of the base margin. */
    double warningMarginBoost = 0.10;

    /** Adds warningEwmaGain * max(0, error EWMA) to the extra margin. */
    double warningEwmaGain = 1.5;

    /** Cap on the extra Warning margin. */
    double maxWarningMargin = 0.50;

    /** In Warning, the prediction is floored at this fraction of the
     *  recent-actuals EWMA (0 disables the floor). */
    double historyFloorFraction = 1.0;

    /** Smoothing factor of the recent-actuals EWMA. */
    double historyAlpha = 0.30;
};

/** Per-state job counts and ladder activity of one run. */
struct GuardedStats
{
    std::size_t healthyJobs = 0;
    std::size_t warningJobs = 0;
    std::size_t fallbackJobs = 0;  //!< Decided by the PID fallback.
    std::size_t safeModeJobs = 0;
};

/** Predictive controller with watchdog-driven graceful degradation. */
class GuardedPredictiveController : public DvfsController
{
  public:
    /**
     * @param table        Operating points of the accelerator.
     * @param f_nominal_hz Nominal clock.
     * @param dvfs         Deadline/margin/switch parameters; must use
     *                     the same deadline as the engine.
     * @param pid          Fallback gains (ideally tuned, see
     *                     PidController::tune()).
     * @param watchdog     Trip thresholds.
     * @param guarded      Degraded-mode behaviour.
     */
    GuardedPredictiveController(const power::OperatingPointTable &table,
                                double f_nominal_hz,
                                DvfsModelConfig dvfs,
                                PidConfig pid = {},
                                WatchdogConfig watchdog = {},
                                GuardedConfig guarded = {});

    std::string name() const override { return "guarded prediction"; }
    Decision decide(const PreparedJob &job, std::size_t current_level,
                    double budget_seconds) override;
    void observe(const PreparedJob &job,
                 double nominal_seconds) override;
    void reset() override;

    const PredictionWatchdog &watchdog() const { return dog; }
    const GuardedStats &stats() const { return counters; }

  private:
    Decision decideDegraded(const PreparedJob &job,
                            std::size_t current_level,
                            double budget_seconds, bool use_fallback);
    std::size_t safeLevel() const;

    PredictiveController inner;
    PidController fallback;
    DvfsModel model;
    PredictionWatchdog dog;
    GuardedConfig cfg;
    GuardedStats counters;

    // Previous job's triple, fed to the watchdog at the next decide()
    // when the budget reveals whether it missed.
    bool pendingValid = false;
    double pendingPredicted = 0.0;
    double pendingActual = 0.0;

    // EWMA of actual nominal execution times (the Warning floor).
    bool haveRecent = false;
    double recentActual = 0.0;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_GUARDED_CONTROLLER_HH
