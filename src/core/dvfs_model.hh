/**
 * @file
 * The DVFS model (paper Section 3.6): converts a predicted execution
 * time at nominal frequency into the lowest discrete DVFS level that
 * meets the job's deadline, accounting for the prediction margin, the
 * slice execution time, and the voltage/frequency switching time:
 *
 *   f = ceil_to_level( f0 * (T0 + Tmargin)
 *                      / (Tbudget - Tslice - Tdvfs) )
 *
 * Because execution time is compute-dominated (T = C / f; the paper
 * argues Tmemory is negligible for accelerators with DMA-managed
 * scratchpads), scaling from T0 at f0 to any level is exact.
 */

#ifndef PREDVFS_CORE_DVFS_MODEL_HH
#define PREDVFS_CORE_DVFS_MODEL_HH

#include <cstddef>

#include "power/operating_points.hh"

namespace predvfs {
namespace core {

/** Deadline and overhead parameters of the DVFS decision. */
struct DvfsModelConfig
{
    /** Job time budget; 16.7 ms = one 60 fps frame (paper 4.2). */
    double deadlineSeconds = 1.0 / 60.0;

    /** Safety margin added to the predicted time (fractional). */
    double marginFraction = 0.05;

    /** Voltage/frequency switch settling time (paper: 100 us). */
    double switchTimeSeconds = 100e-6;

    /** May the boost level be used when nominal cannot make it? */
    bool allowBoost = false;

    /** Figure 13 variant: pretend slice and switch cost nothing. */
    bool ignoreOverheads = false;
};

/** Level chooser shared by every DVFS controller. */
class DvfsModel
{
  public:
    /** Outcome of a level decision. */
    struct Choice
    {
        std::size_t level = 0;
        bool feasible = false;   //!< Deadline met at this level?
        bool switched = false;   //!< Level differs from the current one.
    };

    /**
     * @param table         Operating points of this accelerator.
     * @param f_nominal_hz  Frequency the prediction was made at.
     * @param config        Deadline/overhead parameters.
     */
    DvfsModel(const power::OperatingPointTable &table,
              double f_nominal_hz, const DvfsModelConfig &config);

    /**
     * Choose the lowest level that meets the deadline.
     *
     * @param predicted_nominal_seconds Predicted execution time at the
     *        nominal frequency (T0).
     * @param slice_seconds Time already spent (or to be spent) running
     *        the predictor for this job; 0 for schemes without one.
     * @param current_level The level the accelerator is at, so the
     *        switch penalty is only charged when the level changes.
     * @param budget_seconds Remaining time budget for this job; pass
     *        a non-positive value to use the configured deadline. A
     *        late-running predecessor (missed deadline) shrinks the
     *        successor's budget — jobs are periodic (paper Figure 1).
     */
    Choice chooseLevel(double predicted_nominal_seconds,
                       double slice_seconds, std::size_t current_level,
                       double budget_seconds = 0.0) const;

    const DvfsModelConfig &config() const { return modelConfig; }
    const power::OperatingPointTable &table() const { return opTable; }
    double nominalFrequencyHz() const { return fNominal; }

  private:
    const power::OperatingPointTable &opTable;
    double fNominal;
    DvfsModelConfig modelConfig;
};

} // namespace core
} // namespace predvfs

#endif // PREDVFS_CORE_DVFS_MODEL_HH
