#include "core/persist.hh"

#include <iomanip>
#include <sstream>

#include "rtl/serialize.hh"
#include "util/logging.hh"

namespace predvfs {
namespace core {

using util::fatal;
using util::fatalIf;

namespace {

constexpr const char *magic = "predvfs-predictor-v1";

const char *
kindToken(rtl::FeatureKind kind)
{
    switch (kind) {
      case rtl::FeatureKind::Stc: return "stc";
      case rtl::FeatureKind::Ic: return "ic";
      case rtl::FeatureKind::Siv: return "siv";
      case rtl::FeatureKind::Spv: return "spv";
    }
    return "?";
}

rtl::FeatureKind
tokenToKind(const std::string &token)
{
    if (token == "stc")
        return rtl::FeatureKind::Stc;
    if (token == "ic")
        return rtl::FeatureKind::Ic;
    if (token == "siv")
        return rtl::FeatureKind::Siv;
    if (token == "spv")
        return rtl::FeatureKind::Spv;
    fatal("unknown feature kind '", token, "'");
    return rtl::FeatureKind::Stc;
}

} // namespace

void
savePredictor(std::ostream &os, const SlicePredictor &predictor)
{
    const auto &slice = predictor.slice();
    os << magic << "\n";
    rtl::writeDesign(os, slice.design);

    os << "features " << slice.features.size() << "\n";
    for (const auto &spec : slice.features) {
        os << "feature " << kindToken(spec.kind) << " " << spec.fsm
           << " " << spec.src << " " << spec.dst << " " << spec.counter
           << " " << spec.name << "\n";
    }

    os << std::setprecision(17);
    os << "model " << predictor.intercept();
    for (std::size_t i = 0; i < predictor.coefficients().size(); ++i)
        os << " " << predictor.coefficients()[i];
    os << "\n";

    os << "sliceinfo " << slice.keptFsms << " " << slice.keptCounters
       << " " << slice.keptBlocks << " "
       << slice.instrumentationAreaUnits << " "
       << slice.modelEvalAreaUnits << "\n";
}

std::shared_ptr<const SlicePredictor>
loadPredictor(std::istream &is)
{
    std::string line;
    fatalIf(!std::getline(is, line) || line != magic,
            "not a predvfs predictor file");

    rtl::SliceResult slice{rtl::Design("placeholder"), {}, 0, 0, 0,
                           0.0, 0.0};
    slice.design = rtl::readDesign(is);

    fatalIf(!std::getline(is, line), "missing features section");
    std::istringstream fh(line);
    std::string keyword;
    std::size_t count = 0;
    fh >> keyword >> count;
    fatalIf(keyword != "features", "expected 'features <n>'");

    for (std::size_t i = 0; i < count; ++i) {
        fatalIf(!std::getline(is, line), "truncated feature list");
        std::istringstream fs(line);
        std::string kind;
        rtl::FeatureSpec spec;
        fs >> keyword >> kind >> spec.fsm >> spec.src >> spec.dst >>
            spec.counter >> spec.name;
        fatalIf(keyword != "feature", "expected 'feature' line");
        spec.kind = tokenToKind(kind);
        slice.features.push_back(std::move(spec));
    }

    fatalIf(!std::getline(is, line), "missing model line");
    std::istringstream ms(line);
    ms >> keyword;
    fatalIf(keyword != "model", "expected 'model' line");
    double intercept = 0.0;
    ms >> intercept;
    opt::Vector beta(count);
    for (std::size_t i = 0; i < count; ++i) {
        fatalIf(!(ms >> beta[i]), "model line has too few "
                                  "coefficients");
    }

    fatalIf(!std::getline(is, line), "missing sliceinfo line");
    std::istringstream si(line);
    si >> keyword >> slice.keptFsms >> slice.keptCounters >>
        slice.keptBlocks >> slice.instrumentationAreaUnits >>
        slice.modelEvalAreaUnits;
    fatalIf(keyword != "sliceinfo", "expected 'sliceinfo' line");

    return std::make_shared<const SlicePredictor>(
        std::move(slice), std::move(beta), intercept);
}

} // namespace core
} // namespace predvfs
