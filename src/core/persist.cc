#include "core/persist.hh"

#include <iomanip>
#include <sstream>

#include "rtl/serialize.hh"
#include "util/logging.hh"

namespace predvfs {
namespace core {

using util::fatal;

namespace {

constexpr const char *magic = "predvfs-predictor-v1";
constexpr const char *checksumKeyword = "checksum";

/** 64-bit FNV-1a over the serialised body. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

const char *
kindToken(rtl::FeatureKind kind)
{
    switch (kind) {
      case rtl::FeatureKind::Stc: return "stc";
      case rtl::FeatureKind::Ic: return "ic";
      case rtl::FeatureKind::Siv: return "siv";
      case rtl::FeatureKind::Spv: return "spv";
    }
    return "?";
}

std::optional<rtl::FeatureKind>
tokenToKind(const std::string &token)
{
    if (token == "stc")
        return rtl::FeatureKind::Stc;
    if (token == "ic")
        return rtl::FeatureKind::Ic;
    if (token == "siv")
        return rtl::FeatureKind::Siv;
    if (token == "spv")
        return rtl::FeatureKind::Spv;
    return std::nullopt;
}

/** Serialise everything the checksum covers. */
void
writeBody(std::ostream &os, const SlicePredictor &predictor)
{
    const auto &slice = predictor.slice();
    os << magic << "\n";
    rtl::writeDesign(os, slice.design);

    os << "features " << slice.features.size() << "\n";
    for (const auto &spec : slice.features) {
        os << "feature " << kindToken(spec.kind) << " " << spec.fsm
           << " " << spec.src << " " << spec.dst << " " << spec.counter
           << " " << spec.name << "\n";
    }

    os << std::setprecision(17);
    os << "model " << predictor.intercept();
    for (std::size_t i = 0; i < predictor.coefficients().size(); ++i)
        os << " " << predictor.coefficients()[i];
    os << "\n";

    os << "sliceinfo " << slice.keptFsms << " " << slice.keptCounters
       << " " << slice.keptBlocks << " "
       << slice.instrumentationAreaUnits << " "
       << slice.modelEvalAreaUnits << "\n";
}

} // namespace

void
savePredictor(std::ostream &os, const SlicePredictor &predictor)
{
    std::ostringstream body;
    writeBody(body, predictor);
    const std::string text = body.str();
    os << text << checksumKeyword << " " << std::hex
       << std::setfill('0') << std::setw(16) << fnv1a(text) << std::dec
       << std::setfill(' ') << "\n";
}

std::optional<std::shared_ptr<const SlicePredictor>>
tryLoadPredictor(std::istream &is, std::string *error)
{
    const auto fail =
        [error](const std::string &message)
            -> std::optional<std::shared_ptr<const SlicePredictor>> {
        if (error)
            *error = message;
        return std::nullopt;
    };

    std::ostringstream all;
    all << is.rdbuf();
    std::string text = all.str();
    if (text.empty())
        return fail("empty predictor stream");

    // Magic first: a clearer diagnosis than a checksum complaint when
    // the stream is not a predictor file at all.
    const std::string first_line = text.substr(0, text.find('\n'));
    if (first_line != magic)
        return fail("not a predvfs predictor file");

    // The last line must be the checksum over everything before it.
    if (text.back() == '\n')
        text.pop_back();
    const std::size_t last_nl = text.rfind('\n');
    if (last_nl == std::string::npos)
        return fail("predictor stream has no body");
    const std::string last_line = text.substr(last_nl + 1);
    const std::string content = text.substr(0, last_nl + 1);

    std::istringstream cs(last_line);
    std::string keyword;
    std::uint64_t stored = 0;
    cs >> keyword >> std::hex >> stored;
    if (keyword != checksumKeyword || cs.fail())
        return fail("missing checksum line (truncated stream?)");
    if (stored != fnv1a(content))
        return fail("predictor checksum mismatch (stream corrupted "
                    "or truncated)");

    // From here the content is exactly what savePredictor() wrote;
    // parse failures indicate a writer bug, and the design reader's
    // fatal() behaviour is acceptable.
    std::istringstream body(content);
    std::string line;
    if (!std::getline(body, line) || line != magic)
        return fail("not a predvfs predictor file");

    rtl::SliceResult slice{rtl::Design("placeholder"), {}, 0, 0, 0,
                           0.0, 0.0};
    slice.design = rtl::readDesign(body);

    if (!std::getline(body, line))
        return fail("missing features section");
    std::istringstream fh(line);
    std::size_t count = 0;
    fh >> keyword >> count;
    if (keyword != "features")
        return fail("expected 'features <n>'");

    for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(body, line))
            return fail("truncated feature list");
        std::istringstream fs(line);
        std::string kind;
        rtl::FeatureSpec spec;
        fs >> keyword >> kind >> spec.fsm >> spec.src >> spec.dst >>
            spec.counter >> spec.name;
        if (keyword != "feature")
            return fail("expected 'feature' line");
        const auto parsed_kind = tokenToKind(kind);
        if (!parsed_kind)
            return fail("unknown feature kind '" + kind + "'");
        spec.kind = *parsed_kind;
        slice.features.push_back(std::move(spec));
    }

    if (!std::getline(body, line))
        return fail("missing model line");
    std::istringstream ms(line);
    ms >> keyword;
    if (keyword != "model")
        return fail("expected 'model' line");
    double intercept = 0.0;
    ms >> intercept;
    opt::Vector beta(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!(ms >> beta[i]))
            return fail("model line has too few coefficients");
    }

    if (!std::getline(body, line))
        return fail("missing sliceinfo line");
    std::istringstream si(line);
    si >> keyword >> slice.keptFsms >> slice.keptCounters >>
        slice.keptBlocks >> slice.instrumentationAreaUnits >>
        slice.modelEvalAreaUnits;
    if (keyword != "sliceinfo")
        return fail("expected 'sliceinfo' line");

    return std::make_shared<const SlicePredictor>(
        std::move(slice), std::move(beta), intercept);
}

std::shared_ptr<const SlicePredictor>
loadPredictor(std::istream &is)
{
    std::string error;
    auto predictor = tryLoadPredictor(is, &error);
    if (!predictor)
        fatal(error);
    return *predictor;
}

} // namespace core
} // namespace predvfs
