#include "core/flow.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/features.hh"
#include "opt/standardize.hh"
#include "rtl/analysis.hh"
#include "rtl/lint.hh"
#include "rtl/report.hh"
#include "rtl/verify.hh"
#include "util/logging.hh"
#include "util/statistics.hh"

namespace predvfs {
namespace core {

using util::panicIf;

namespace {

/** Deterministic train/validation split: every k-th job validates. */
void
splitDataset(const FeatureDataset &ds, double val_fraction,
             opt::Matrix &x_train, opt::Vector &y_train,
             opt::Matrix &x_val, opt::Vector &y_val)
{
    const std::size_t n = ds.x.rows();
    const std::size_t p = ds.x.cols();
    const std::size_t stride = val_fraction > 0.0
        ? std::max<std::size_t>(
              2, static_cast<std::size_t>(std::llround(
                     1.0 / val_fraction)))
        : n + 1;

    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> val_rows;
    for (std::size_t i = 0; i < n; ++i) {
        if ((i % stride) == stride - 1)
            val_rows.push_back(i);
        else
            train_rows.push_back(i);
    }
    if (val_rows.empty()) {  // Tiny training sets: validate on train.
        val_rows = train_rows;
    }

    x_train = opt::Matrix(train_rows.size(), p);
    y_train = opt::Vector(train_rows.size());
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
        for (std::size_t c = 0; c < p; ++c)
            x_train.at(i, c) = ds.x.at(train_rows[i], c);
        y_train[i] = ds.y[train_rows[i]];
    }
    x_val = opt::Matrix(val_rows.size(), p);
    y_val = opt::Vector(val_rows.size());
    for (std::size_t i = 0; i < val_rows.size(); ++i) {
        for (std::size_t c = 0; c < p; ++c)
            x_val.at(i, c) = ds.x.at(val_rows[i], c);
        y_val[i] = ds.y[val_rows[i]];
    }
}

/** Validation loss: the same asymmetric quadratic the fit minimises. */
double
validationLoss(const opt::Matrix &x, const opt::Vector &y,
               const opt::FitResult &fit, double alpha)
{
    double loss = 0.0;
    const opt::Vector pred = x.multiply(fit.beta);
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double r = pred[i] + fit.intercept - y[i];
        loss += (r > 0.0 ? 1.0 : alpha) * r * r;
    }
    return loss / static_cast<double>(y.size());
}

/** Keep only the columns in @p keep. */
opt::Matrix
selectColumns(const opt::Matrix &x, const std::vector<std::size_t> &keep)
{
    opt::Matrix out(x.rows(), keep.size());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < keep.size(); ++c)
            out.at(r, c) = x.at(r, keep[c]);
    return out;
}

} // namespace

FlowResult
buildPredictor(const rtl::Design &design,
               const std::vector<rtl::JobInput> &train_jobs,
               const FlowConfig &config)
{
    panicIf(train_jobs.empty(), "buildPredictor: no training jobs");
    panicIf(config.alpha <= 1.0,
            "buildPredictor: alpha must exceed 1 for conservative fits");

    FlowResult result;

    // --- 0. Static verification: refuse provably broken designs. ----
    {
        const rtl::LintReport lint = rtl::lintDesign(design);
        if (!lint.clean()) {
            std::ostringstream os;
            rtl::writeLintReport(os, design, lint);
            util::fatal("buildPredictor: design '", design.name(),
                        "' fails lint with ", lint.numErrors(),
                        " error(s):\n", os.str());
        }
    }

    // Translation validation: refuse designs whose compiled form is
    // not provably equivalent to the source, independent of the
    // PREDVFS_VERIFY knob (which only controls the construction hook).
    {
        const rtl::CompiledDesign compiled(design);
        const rtl::VerifyReport verify =
            rtl::verifyCompiledDesign(compiled);
        if (!verify.clean()) {
            std::ostringstream os;
            rtl::writeVerifyReport(os, design, verify);
            util::fatal("buildPredictor: compiled form of '",
                        design.name(),
                        "' fails translation validation with ",
                        verify.numErrors(), " error(s):\n", os.str());
        }
    }

    // --- 1. Static analysis: discover the feature set. --------------
    rtl::AnalysisReport analysis = rtl::analyze(design);
    if (config.featureFilter) {
        std::vector<rtl::FeatureSpec> kept_specs;
        for (auto &spec : analysis.features)
            if (config.featureFilter(spec))
                kept_specs.push_back(std::move(spec));
        analysis.features = std::move(kept_specs);
    }
    result.report.featuresDetected = analysis.numFeatures();
    result.report.implicitStates = analysis.implicitStates.size();
    panicIf(analysis.features.empty(),
            "design '", design.name(), "' exposes no features");

    // --- 2. Profile the instrumented design on the training set. ----
    const FeatureDataset ds =
        collectDataset(design, analysis.features, train_jobs);

    opt::Matrix x_train_raw, x_val_raw;
    opt::Vector y_train, y_val;
    splitDataset(ds, config.validationFraction, x_train_raw, y_train,
                 x_val_raw, y_val);

    // Standardise features; scale targets to O(1) so gamma has a
    // workload-independent meaning.
    const opt::Standardizer stdizer(x_train_raw);
    const opt::Matrix x_train = stdizer.transform(x_train_raw);
    const opt::Matrix x_val = stdizer.transform(x_val_raw);

    double y_scale = 0.0;
    for (std::size_t i = 0; i < y_train.size(); ++i)
        y_scale += y_train[i];
    y_scale /= static_cast<double>(y_train.size());
    y_scale = std::max(y_scale, 1.0);

    opt::Vector y_train_s(y_train.size());
    for (std::size_t i = 0; i < y_train.size(); ++i)
        y_train_s[i] = y_train[i] / y_scale;
    opt::Vector y_val_s(y_val.size());
    for (std::size_t i = 0; i < y_val.size(); ++i)
        y_val_s[i] = y_val[i] / y_scale;

    // --- 3. Sweep gamma; prefer the sparsest accurate model. --------
    const double n_train = static_cast<double>(x_train.rows());
    struct Candidate
    {
        opt::FitResult fit;
        double gamma = 0.0;
        double valLoss = 0.0;
        std::size_t nnz = 0;
    };
    std::vector<Candidate> candidates;
    for (double g : config.gammaSweep) {
        opt::LassoConfig lc;
        lc.alpha = config.alpha;
        lc.gamma = g * n_train;
        Candidate cand;
        cand.fit = opt::AsymmetricLasso::fit(x_train, y_train_s, lc);
        cand.gamma = lc.gamma;
        cand.valLoss =
            validationLoss(x_val, y_val_s, cand.fit, config.alpha);
        cand.nnz = cand.fit.nonZeroCount(config.coefficientThreshold);
        candidates.push_back(std::move(cand));
    }

    double best_loss = candidates.front().valLoss;
    for (const auto &cand : candidates)
        best_loss = std::min(best_loss, cand.valLoss);

    const Candidate *chosen = nullptr;
    const double acceptable_loss =
        best_loss * (1.0 + config.accuracyTolerance) +
        config.absoluteLossFloor * config.alpha;
    for (const auto &cand : candidates) {
        if (cand.nnz == 0)
            continue;
        if (cand.valLoss <= acceptable_loss) {
            if (!chosen || cand.nnz < chosen->nnz ||
                (cand.nnz == chosen->nnz &&
                 cand.valLoss < chosen->valLoss)) {
                chosen = &cand;
            }
        }
    }
    panicIf(!chosen, "gamma sweep produced no usable model");
    result.report.gammaChosen = chosen->gamma;

    // --- 4. Debias: refit the surviving features without shrinkage
    // (alpha keeps the fit conservative) on the full training set. ---
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < chosen->fit.beta.size(); ++c)
        if (std::fabs(chosen->fit.beta[c]) >
            config.coefficientThreshold)
            keep.push_back(c);
    panicIf(keep.empty(), "model kept no features");

    const opt::Matrix x_full_raw_sel = selectColumns(ds.x, keep);
    const opt::Standardizer stdizer_sel(x_full_raw_sel);
    const opt::Matrix x_full_sel = stdizer_sel.transform(x_full_raw_sel);
    opt::Vector y_full_s(ds.y.size());
    for (std::size_t i = 0; i < ds.y.size(); ++i)
        y_full_s[i] = ds.y[i] / y_scale;

    opt::LassoConfig refit_cfg;
    refit_cfg.alpha = config.alpha;
    refit_cfg.gamma = 0.0;
    refit_cfg.maxIterations = 8000;
    const opt::FitResult refit =
        opt::AsymmetricLasso::fit(x_full_sel, y_full_s, refit_cfg);

    // Fold the standardisation and the y scale back into raw-space
    // coefficients: the runtime predictor is a plain dot product.
    opt::Vector beta_raw;
    double intercept_raw = 0.0;
    stdizer_sel.unscale(refit.beta, refit.intercept, beta_raw,
                        intercept_raw);
    for (std::size_t i = 0; i < beta_raw.size(); ++i)
        beta_raw[i] *= y_scale;
    intercept_raw *= y_scale;

    // Training-set error extremes for the report.
    for (std::size_t r = 0; r < ds.x.rows(); ++r) {
        double pred = intercept_raw;
        for (std::size_t c = 0; c < keep.size(); ++c)
            pred += beta_raw[c] * ds.x.at(r, keep[c]);
        const double err = (pred - ds.y[r]) / ds.y[r];
        result.report.trainMaxOverError =
            std::max(result.report.trainMaxOverError, err);
        result.report.trainMaxUnderError =
            std::min(result.report.trainMaxUnderError, err);
    }

    // --- 5. Slice the hardware down to the selected features. -------
    std::vector<rtl::FeatureSpec> selected;
    for (std::size_t c : keep)
        selected.push_back(analysis.features[c]);
    result.report.featuresSelected = selected.size();
    result.report.selectedFeatures = selected;

    rtl::SliceResult slice =
        rtl::makeSlice(design, selected, config.sliceOptions);

    // Slice-consistency check: every selected feature must still be
    // observable in the slice. A failure here is a slicer bug, not a
    // user error.
    {
        const rtl::LintReport lint = rtl::lintSlice(design, slice);
        if (!lint.clean()) {
            std::ostringstream os;
            rtl::writeLintReport(os, slice.design, lint);
            util::panic("buildPredictor: slice of '", design.name(),
                        "' fails consistency lint:\n", os.str());
        }
    }

    result.predictor = std::make_shared<const SlicePredictor>(
        std::move(slice), std::move(beta_raw), intercept_raw);
    return result;
}

} // namespace core
} // namespace predvfs
