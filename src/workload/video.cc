#include "workload/video.hh"

#include <algorithm>
#include <cmath>

#include "accel/h264.hh"
#include "util/logging.hh"

namespace predvfs {
namespace workload {

std::vector<VideoProfile>
figure2Profiles()
{
    return {
        {"coastguard", 0.85, 0.75, 1.0 / 220.0, 30},
        {"foreman", 0.55, 0.55, 1.0 / 160.0, 30},
        {"news", 0.15, 0.40, 1.0 / 400.0, 30},
    };
}

std::vector<VideoProfile>
trainSetProfiles()
{
    return {
        {"train_busride", 0.70, 0.65, 1.0 / 180.0, 30},
        {"train_weather", 0.25, 0.45, 1.0 / 300.0, 30},
    };
}

std::vector<VideoProfile>
testSetProfiles()
{
    auto profiles = figure2Profiles();
    profiles.push_back({"mobile", 0.75, 0.90, 1.0 / 200.0, 30});
    profiles.push_back({"akiyo", 0.08, 0.35, 1.0 / 500.0, 30});
    return profiles;
}

namespace {

double
clamp01(double x)
{
    return std::min(1.0, std::max(0.0, x));
}

std::int64_t
clampI(double x, std::int64_t lo, std::int64_t hi)
{
    const auto v = static_cast<std::int64_t>(std::llround(x));
    return std::min(hi, std::max(lo, v));
}

} // namespace

std::vector<rtl::JobInput>
makeVideoClip(const rtl::Design &design, const VideoProfile &profile,
              int frames, int mbs_per_frame, util::Rng rng)
{
    util::panicIf(frames <= 0 || mbs_per_frame <= 0,
                  "makeVideoClip: empty clip");
    const accel::H264Fields f = accel::h264Fields(design);
    const std::size_t num_fields = design.numFields();

    std::vector<rtl::JobInput> clip;
    clip.reserve(static_cast<std::size_t>(frames));

    // Scene state: drifts within a scene, redrawn at scene changes.
    double scene_motion = profile.motion;
    double scene_texture = profile.texture;
    // Frame-to-frame complexity follows an AR(1) walk within a scene.
    double complexity = 0.5;
    int frames_since_intra = 0;

    for (int frame = 0; frame < frames; ++frame) {
        bool scene_change = rng.bernoulli(profile.sceneChangeProb);
        if (scene_change) {
            scene_motion =
                clamp01(profile.motion + rng.normal(0.0, 0.25));
            scene_texture =
                clamp01(profile.texture + rng.normal(0.0, 0.20));
            complexity = clamp01(0.5 + rng.normal(0.0, 0.2));
        }
        complexity = clamp01(0.90 * complexity +
                             0.10 * (0.35 + 0.5 * scene_motion) +
                             rng.normal(0.0, 0.035));

        const bool intra_frame = scene_change ||
            frames_since_intra >= profile.gopLength - 1;
        frames_since_intra = intra_frame ? 0 : frames_since_intra + 1;

        rtl::JobInput job;
        job.items.reserve(static_cast<std::size_t>(mbs_per_frame));

        for (int mb = 0; mb < mbs_per_frame; ++mb) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);

            std::int64_t mb_type;
            if (intra_frame) {
                // I-frame: everything intra, mostly I4x4.
                mb_type = rng.bernoulli(0.72) ? 1 : 0;
            } else {
                const double p_skip =
                    clamp01(0.52 - 0.38 * scene_motion);
                const double p_p8 = 0.12 + 0.30 * scene_motion;
                const double p_intra =
                    0.015 + 0.04 * scene_motion * complexity;
                const std::size_t pick = rng.categorical(
                    {p_skip, 1.0 - p_skip - p_p8 - p_intra, p_p8,
                     p_intra});
                mb_type = pick == 0 ? 4 : pick == 1 ? 2 : pick == 3 ?
                    (rng.bernoulli(0.6) ? 1 : 0) : 3;
            }
            item.fields[f.mbType] = mb_type;

            const bool is_intra = mb_type <= 1;
            const bool is_skip = mb_type == 4;

            // Residual statistics: intra macroblocks carry far more
            // coefficients; skips carry none.
            std::int64_t coeff = 0;
            if (is_skip) {
                coeff = 0;
            } else if (is_intra) {
                coeff = clampI(
                    rng.normal(120.0 + 160.0 * scene_texture, 45.0), 8,
                    384);
            } else {
                coeff = clampI(
                    rng.normal(25.0 + 120.0 * complexity *
                                   scene_texture,
                               22.0),
                    0, 384);
            }
            item.fields[f.coeffCount] = coeff;
            item.fields[f.cbpBlocks] =
                std::min<std::int64_t>(24, (coeff + 9) / 12);

            if (!is_intra && !is_skip) {
                const double p_quarter =
                    clamp01(0.22 + 0.45 * scene_motion);
                const double p_half = 0.30;
                const std::size_t pick = rng.categorical(
                    {1.0 - p_quarter - p_half, p_half, p_quarter});
                item.fields[f.mvFrac] = static_cast<std::int64_t>(pick);
                item.fields[f.refParts] =
                    mb_type == 3 ? (rng.bernoulli(0.5) ? 4 : 2) : 1;
            } else if (is_skip) {
                item.fields[f.mvFrac] = 0;
                item.fields[f.refParts] = 1;
            }

            std::int64_t edges = 4 + item.fields[f.cbpBlocks] * 3 / 2;
            if (is_intra)
                edges += 10;
            item.fields[f.deblockEdges] = std::min<std::int64_t>(
                48, is_skip ? 0 : edges);

            job.items.push_back(std::move(item));
        }
        clip.push_back(std::move(job));
    }
    return clip;
}

} // namespace workload
} // namespace predvfs
