/**
 * @file
 * Synthetic particle-simulation workload for the MD accelerator
 * (paper Table 3: "200 steps (particle pos. changes)"). Neighbour
 * counts evolve smoothly as particles drift, with occasional
 * clustering events that sharply raise the pair count — the spiky
 * behaviour that defeats reactive DVFS.
 */

#ifndef PREDVFS_WORKLOAD_PARTICLES_HH
#define PREDVFS_WORKLOAD_PARTICLES_HH

#include <vector>

#include "rtl/design.hh"
#include "util/random.hh"

namespace predvfs {
namespace workload {

/** Configuration of the MD trace generator. */
struct MdTraceOptions
{
    int steps = 200;          //!< Jobs (timesteps).
    int particles = 256;      //!< Items per job.
    double minDensity = 4.0;  //!< Average neighbours, sparse regime.
    double maxDensity = 165.0;//!< Average neighbours, clustered regime.
    double walkSigma = 5.0;   //!< Per-step density drift (neighbours).
    double clusterProb = 0.06;//!< Per-step chance of a cluster event.
    double clusterJump = 45.0;//!< Density spike of a cluster event.
};

/** Generate the timestep jobs for the md design. */
std::vector<rtl::JobInput> makeMdTimesteps(const rtl::Design &md_design,
                                           const MdTraceOptions &options,
                                           util::Rng rng);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_PARTICLES_HH
