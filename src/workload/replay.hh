/**
 * @file
 * Replay plans: deterministic orderings of a job stream for driving
 * the prediction service from many concurrent clients.
 *
 * A ReplayPlan is just a sequence of indices into a job vector. The
 * concurrency tests hand each client thread its own plan over the
 * same test workload: round-robin plans partition the stream evenly,
 * duplicate-heavy plans deliberately repeat a small set of hot jobs
 * (seeded, so every run asks for exactly the same sequence) to push
 * traffic onto the JobCache and the in-batch coalescing path.
 */

#ifndef PREDVFS_WORKLOAD_REPLAY_HH
#define PREDVFS_WORKLOAD_REPLAY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace predvfs {
namespace workload {

/** Indices into a job vector, replayed in order. */
struct ReplayPlan
{
    std::vector<std::size_t> indices;
};

/**
 * Partition @p job_count jobs over @p clients round-robin: client c
 * replays jobs c, c + clients, c + 2*clients, ... Every job appears
 * in exactly one plan.
 */
std::vector<ReplayPlan> roundRobinPlans(std::size_t job_count,
                                        std::size_t clients);

/**
 * Duplicate-heavy plans: each client issues @p requests_per_client
 * requests drawn from a hot set of @p hot_jobs distinct indices (the
 * first hot_jobs jobs), with occasional excursions over the full
 * stream. Deterministic in @p seed; client c draws from an
 * independent split stream, so plans do not depend on how many other
 * clients exist.
 */
std::vector<ReplayPlan> duplicateHeavyPlans(std::size_t job_count,
                                            std::size_t clients,
                                            std::size_t
                                                requests_per_client,
                                            std::size_t hot_jobs,
                                            std::uint64_t seed);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_REPLAY_HH
