/**
 * @file
 * Train/test workloads for every benchmark, matching the paper's
 * Table 3: which inputs exist, how many, and the split used to train
 * the predictor versus evaluate the controllers.
 */

#ifndef PREDVFS_WORKLOAD_SUITE_HH
#define PREDVFS_WORKLOAD_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.hh"
#include "rtl/design.hh"

namespace predvfs {
namespace workload {

/** One benchmark's training and test job streams. */
struct BenchmarkWorkload
{
    std::vector<rtl::JobInput> train;
    std::vector<rtl::JobInput> test;
    std::string trainDescription;  //!< Table 3 "Workload (Train)".
    std::string testDescription;   //!< Table 3 "Workload (Test)".
};

/** Default seed; all experiments are reproducible from it. */
constexpr std::uint64_t defaultSeed = 20151209;  // MICRO-48 dates.

/**
 * Build the Table 3 workload for one benchmark accelerator.
 *
 * Train and test sets use disjoint RNG streams, so test inputs are
 * never seen during training.
 */
BenchmarkWorkload makeWorkload(const accel::Accelerator &accelerator,
                               std::uint64_t seed = defaultSeed);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_SUITE_HH
