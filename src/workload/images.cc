#include "workload/images.hh"

#include <algorithm>
#include <cmath>

#include "accel/cjpeg.hh"
#include "accel/djpeg.hh"
#include "accel/stencil.hh"
#include "util/logging.hh"

namespace predvfs {
namespace workload {

namespace {

std::int64_t
clampI(double x, std::int64_t lo, std::int64_t hi)
{
    const auto v = static_cast<std::int64_t>(std::llround(x));
    return std::min(hi, std::max(lo, v));
}

struct ImageShape
{
    int width = 0;
    int height = 0;
    double complexity = 0.0;
    bool chromaSub = false;
};


ImageShape
drawImage(const ImageCorpusOptions &options, util::Rng &rng)
{
    util::panicIf(options.sizes.empty(), "image corpus has no sizes");
    ImageShape shape;
    const auto &size = options.sizes[static_cast<std::size_t>(
        rng.uniformInt(0,
                       static_cast<std::int64_t>(options.sizes.size()) -
                           1))];
    shape.width = size.first;
    shape.height = size.second;
    shape.complexity =
        rng.uniform(options.minComplexity, options.maxComplexity);
    shape.chromaSub = rng.bernoulli(0.6);
    return shape;
}

/** Iterates a bursty image stream: sizes persist within a burst and
 *  complexity drifts, mimicking camera bursts or same-site browsing. */
class ImageStream
{
  public:
    ImageStream(const ImageCorpusOptions &options, util::Rng &rng)
        : options(options), rng(rng)
    {}

    ImageShape
    next()
    {
        if (burst_left <= 0) {
            current = drawImage(options, rng);
            const double p = options.meanBurstLength <= 1.0
                ? 0.0
                : 1.0 - 1.0 / options.meanBurstLength;
            burst_left = rng.burstLength(p, 8);
        } else {
            current.complexity = std::min(
                options.maxComplexity,
                std::max(options.minComplexity,
                         current.complexity + rng.normal(0.0, 0.05)));
        }
        --burst_left;
        return current;
    }

  private:
    const ImageCorpusOptions &options;
    util::Rng &rng;
    ImageShape current;
    std::int64_t burst_left = 0;
};

} // namespace

std::vector<rtl::JobInput>
makeEncodeImages(const rtl::Design &design,
                 const ImageCorpusOptions &options, util::Rng rng)
{
    const accel::CjpegFields f = accel::cjpegFields(design);
    const std::size_t num_fields = design.numFields();

    std::vector<rtl::JobInput> corpus;
    corpus.reserve(static_cast<std::size_t>(options.count));
    ImageStream stream(options, rng);

    for (int i = 0; i < options.count; ++i) {
        const ImageShape shape = stream.next();
        const int mcus =
            ((shape.width + 15) / 16) * ((shape.height + 15) / 16);

        rtl::JobInput job;
        job.items.reserve(static_cast<std::size_t>(mcus));
        for (int m = 0; m < mcus; ++m) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            // Non-zero quantised coefficients track local detail;
            // detail clusters within an image.
            item.fields[f.nonzeroCoeffs] = clampI(
                rng.normal(shape.complexity * 130.0, 34.0), 0, 378);
            item.fields[f.chromaSub] = shape.chromaSub ? 1 : 0;
            job.items.push_back(std::move(item));
        }
        corpus.push_back(std::move(job));
    }
    return corpus;
}

std::vector<rtl::JobInput>
makeDecodeImages(const rtl::Design &design,
                 const ImageCorpusOptions &options, util::Rng rng)
{
    const accel::DjpegFields f = accel::djpegFields(design);
    const std::size_t num_fields = design.numFields();

    std::vector<rtl::JobInput> corpus;
    corpus.reserve(static_cast<std::size_t>(options.count));
    ImageStream stream(options, rng);

    for (int i = 0; i < options.count; ++i) {
        const ImageShape shape = stream.next();
        const int mcus =
            ((shape.width + 15) / 16) * ((shape.height + 15) / 16);

        rtl::JobInput job;
        job.items.reserve(static_cast<std::size_t>(mcus));
        for (int m = 0; m < mcus; ++m) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            item.fields[f.acCoeffs] = clampI(
                rng.normal(shape.complexity * 95.0, 28.0), 0, 378);
            item.fields[f.runPattern] = rng.uniformInt(0, 255);
            item.fields[f.chromaSub] = shape.chromaSub ? 1 : 0;
            job.items.push_back(std::move(item));
        }
        corpus.push_back(std::move(job));
    }
    return corpus;
}

std::vector<rtl::JobInput>
makeStencilImages(const rtl::Design &design,
                  const ImageCorpusOptions &options, util::Rng rng)
{
    const accel::StencilFields f = accel::stencilFields(design);
    const std::size_t num_fields = design.numFields();

    std::vector<rtl::JobInput> corpus;
    corpus.reserve(static_cast<std::size_t>(options.count));
    ImageStream stream(options, rng);

    for (int i = 0; i < options.count; ++i) {
        const ImageShape shape = stream.next();

        rtl::JobInput job;
        job.items.reserve(static_cast<std::size_t>(shape.height));
        for (int row = 0; row < shape.height; ++row) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            item.fields[f.width] = shape.width;
            item.fields[f.boundary] =
                (row == 0 || row == shape.height - 1) ? 1 : 0;
            job.items.push_back(std::move(item));
        }
        corpus.push_back(std::move(job));
    }
    return corpus;
}

} // namespace workload
} // namespace predvfs
