#include "workload/buffers.hh"

#include <algorithm>
#include <cmath>

#include "accel/aes.hh"
#include "accel/sha.hh"
#include "util/logging.hh"

namespace predvfs {
namespace workload {

namespace {

/** Iterates a sessionised buffer-size stream: sizes are log-uniform
 *  across sessions and jitter mildly within one. */
class SizeStream
{
  public:
    SizeStream(const BufferCorpusOptions &options, util::Rng &rng)
        : options(options), rng(rng)
    {
        util::panicIf(options.minBytes <= 0 ||
                          options.maxBytes < options.minBytes,
                      "bad buffer size range");
    }

    std::int64_t
    next()
    {
        if (session_left <= 0) {
            const double lo =
                std::log(static_cast<double>(options.minBytes));
            const double hi =
                std::log(static_cast<double>(options.maxBytes));
            session_log_bytes = rng.uniform(lo, hi);
            const double p = options.meanSessionLength <= 1.0
                ? 0.0
                : 1.0 - 1.0 / options.meanSessionLength;
            session_left = rng.burstLength(p, 12);
        }
        --session_left;
        const double jittered =
            session_log_bytes + rng.normal(0.0, 0.08);
        const double bytes = std::exp(std::min(
            std::log(static_cast<double>(options.maxBytes)),
            std::max(std::log(static_cast<double>(options.minBytes)),
                     jittered)));
        return static_cast<std::int64_t>(std::llround(bytes));
    }

  private:
    const BufferCorpusOptions &options;
    util::Rng &rng;
    double session_log_bytes = 0.0;
    std::int64_t session_left = 0;
};

} // namespace

std::vector<rtl::JobInput>
makeAesBuffers(const rtl::Design &design,
               const BufferCorpusOptions &options, util::Rng rng)
{
    const accel::AesFields f = accel::aesFields(design);
    const std::size_t num_fields = design.numFields();
    constexpr std::int64_t seg_blocks = 256;  // 4 KiB / 16 B.

    std::vector<rtl::JobInput> corpus;
    corpus.reserve(static_cast<std::size_t>(options.count));
    SizeStream sizes(options, rng);

    for (int i = 0; i < options.count; ++i) {
        const std::int64_t bytes = sizes.next();
        std::int64_t blocks = std::max<std::int64_t>(1, bytes / 16);
        const bool cbc = rng.bernoulli(0.5);
        // Key size distribution: mostly AES-128.
        const std::size_t key_pick =
            rng.categorical({0.7, 0.15, 0.15});
        const std::int64_t key_rounds =
            key_pick == 0 ? 10 : key_pick == 1 ? 12 : 14;

        rtl::JobInput job;
        bool first = true;
        while (blocks > 0) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            item.fields[f.blocks] = std::min(blocks, seg_blocks);
            item.fields[f.cbcMode] = cbc ? 1 : 0;
            item.fields[f.keyRounds] = key_rounds;
            item.fields[f.firstSeg] = first ? 1 : 0;
            job.items.push_back(std::move(item));
            blocks -= seg_blocks;
            first = false;
        }
        corpus.push_back(std::move(job));
    }
    return corpus;
}

std::vector<rtl::JobInput>
makeShaBuffers(const rtl::Design &design,
               const BufferCorpusOptions &options, util::Rng rng)
{
    const accel::ShaFields f = accel::shaFields(design);
    const std::size_t num_fields = design.numFields();
    constexpr std::int64_t seg_chunks = 64;  // 4 KiB / 64 B.

    std::vector<rtl::JobInput> corpus;
    corpus.reserve(static_cast<std::size_t>(options.count));
    SizeStream sizes(options, rng);

    for (int i = 0; i < options.count; ++i) {
        const std::int64_t bytes = sizes.next();
        std::int64_t chunks = std::max<std::int64_t>(1, bytes / 64);

        rtl::JobInput job;
        while (chunks > 0) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            item.fields[f.chunks] = std::min(chunks, seg_chunks);
            chunks -= seg_chunks;
            item.fields[f.lastSeg] = chunks <= 0 ? 1 : 0;
            job.items.push_back(std::move(item));
        }
        corpus.push_back(std::move(job));
    }
    return corpus;
}

} // namespace workload
} // namespace predvfs
