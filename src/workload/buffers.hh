/**
 * @file
 * Variable-size data buffers for the AES and SHA accelerators (paper
 * Table 3: "100 pieces of data (various sizes)"). Consecutive buffers
 * are uncorrelated, like frames of a DRM video stream interleaved
 * with other traffic.
 */

#ifndef PREDVFS_WORKLOAD_BUFFERS_HH
#define PREDVFS_WORKLOAD_BUFFERS_HH

#include <vector>

#include "rtl/design.hh"
#include "util/random.hh"

namespace predvfs {
namespace workload {

/** Configuration of a buffer corpus. */
struct BufferCorpusOptions
{
    int count = 100;

    /** Mean session length: consecutive buffers from one stream
     *  (e.g. DRM chunks of one video) have similar sizes. 1 disables
     *  correlation. */
    double meanSessionLength = 4.0;
    /** Buffer size range in bytes. */
    std::int64_t minBytes = 256 * 1024;
    std::int64_t maxBytes = 8 * 1024 * 1024;
};

/** Buffers for the AES design (items = 4 KiB segments). */
std::vector<rtl::JobInput> makeAesBuffers(
    const rtl::Design &aes_design, const BufferCorpusOptions &options,
    util::Rng rng);

/** Buffers for the SHA design (items = 4 KiB segments). */
std::vector<rtl::JobInput> makeShaBuffers(
    const rtl::Design &sha_design, const BufferCorpusOptions &options,
    util::Rng rng);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_BUFFERS_HH
