/**
 * @file
 * Trace import/export: job streams as CSV, so real traces (e.g.
 * per-macroblock statistics dumped by a bitstream analyser, the way
 * the paper profiles real clips) can drive the framework, and
 * generated synthetic workloads can leave it for external analysis.
 *
 * Format: a header row naming the design's fields plus a leading
 * `job` column; one row per work item:
 *
 *   job,mb_type,coeff_count,...
 *   0,2,41,...
 *   0,4,0,...
 *   1,1,210,...
 */

#ifndef PREDVFS_WORKLOAD_TRACE_IO_HH
#define PREDVFS_WORKLOAD_TRACE_IO_HH

#include <istream>
#include <ostream>
#include <vector>

#include "rtl/design.hh"

namespace predvfs {
namespace workload {

/** Write @p jobs as CSV using @p design's field names. */
void writeTraceCsv(std::ostream &os, const rtl::Design &design,
                   const std::vector<rtl::JobInput> &jobs);

/**
 * Parse a CSV trace for @p design. The header's field columns must
 * match the design's field names exactly (order included) — a
 * mismatched trace is a user error (fatal()), not a crash.
 */
std::vector<rtl::JobInput> readTraceCsv(std::istream &is,
                                        const rtl::Design &design);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_TRACE_IO_HH
