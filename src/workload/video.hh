/**
 * @file
 * Synthetic video workload for the H.264 decoder.
 *
 * The paper drives the decoder with real clips (coastguard, foreman,
 * news, ...). Those bitstreams are not available offline, so we
 * generate per-macroblock syntax statistics from a content model that
 * reproduces the structure the DVFS controllers care about (paper
 * Figure 2): GOP-periodic intra frames that spike execution time,
 * slowly drifting inter-frame complexity within a scene, and abrupt
 * scene changes. Clip "profiles" play the role of different source
 * videos: coastguard (high motion, high texture), foreman (medium),
 * news (static talking heads).
 */

#ifndef PREDVFS_WORKLOAD_VIDEO_HH
#define PREDVFS_WORKLOAD_VIDEO_HH

#include <string>
#include <vector>

#include "rtl/design.hh"
#include "util/random.hh"

namespace predvfs {
namespace workload {

/** Content statistics of one source clip. */
struct VideoProfile
{
    std::string name;
    double motion = 0.5;    //!< 0 = static .. 1 = fast panning.
    double texture = 0.5;   //!< 0 = flat .. 1 = detailed.
    double sceneChangeProb = 1.0 / 150.0;
    int gopLength = 30;     //!< Intra-frame period.
};

/** The three clips plotted in the paper's Figure 2. */
std::vector<VideoProfile> figure2Profiles();

/** Five additional test-set profiles (paper: 5 videos, 1500 frames). */
std::vector<VideoProfile> testSetProfiles();

/** Two training-set profiles (paper: 2 videos, 600 frames). */
std::vector<VideoProfile> trainSetProfiles();

/**
 * Generate one clip: a sequence of frame jobs for the H.264 design.
 *
 * @param design        The h264 accelerator design (field schema).
 * @param profile       Content model of the clip.
 * @param frames        Number of frames (jobs).
 * @param mbs_per_frame Macroblocks per frame (constant resolution;
 *                      396 = CIF, the paper's "same size" setting).
 * @param rng           Seeded generator (consumed).
 */
std::vector<rtl::JobInput> makeVideoClip(const rtl::Design &design,
                                         const VideoProfile &profile,
                                         int frames, int mbs_per_frame,
                                         util::Rng rng);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_VIDEO_HH
