/**
 * @file
 * Synthetic image corpora for the JPEG encoder/decoder and the stencil
 * filter (paper Table 3: "100 images (various sizes)"). Images have no
 * temporal correlation — consecutive jobs are independent, which is
 * exactly the regime where reactive (history-based) DVFS control
 * breaks down (paper Section 2.4, JPEG browsing example).
 */

#ifndef PREDVFS_WORKLOAD_IMAGES_HH
#define PREDVFS_WORKLOAD_IMAGES_HH

#include <vector>

#include "rtl/design.hh"
#include "util/random.hh"

namespace predvfs {
namespace workload {

/** Size/complexity ranges of an image corpus. */
struct ImageCorpusOptions
{
    int count = 100;

    /** Mean burst length: consecutive images from the same source
     *  (camera burst, one web page) share a size and drift slowly in
     *  complexity. 1 disables correlation. */
    double meanBurstLength = 2.5;
    /** (width, height) size classes sampled per image. */
    std::vector<std::pair<int, int>> sizes = {
        {512, 384}, {640, 480}, {800, 600}, {1024, 768},
        {1280, 720}, {1600, 900}, {1600, 1200},
    };
    double minComplexity = 0.15;  //!< Flattest image.
    double maxComplexity = 0.90;  //!< Busiest image.
};

/** Images for the JPEG encoder (items = 16x16 MCUs). */
std::vector<rtl::JobInput> makeEncodeImages(
    const rtl::Design &cjpeg_design, const ImageCorpusOptions &options,
    util::Rng rng);

/** Images for the JPEG decoder (items = MCUs). */
std::vector<rtl::JobInput> makeDecodeImages(
    const rtl::Design &djpeg_design, const ImageCorpusOptions &options,
    util::Rng rng);

/** Images for the stencil filter (items = rows). */
std::vector<rtl::JobInput> makeStencilImages(
    const rtl::Design &stencil_design, const ImageCorpusOptions &options,
    util::Rng rng);

} // namespace workload
} // namespace predvfs

#endif // PREDVFS_WORKLOAD_IMAGES_HH
