#include "workload/particles.hh"

#include <algorithm>
#include <cmath>

#include "accel/md.hh"
#include "util/logging.hh"

namespace predvfs {
namespace workload {

std::vector<rtl::JobInput>
makeMdTimesteps(const rtl::Design &design, const MdTraceOptions &options,
                util::Rng rng)
{
    util::panicIf(options.steps <= 0 || options.particles <= 0,
                  "makeMdTimesteps: empty trace");
    const accel::MdFields f = accel::mdFields(design);
    const std::size_t num_fields = design.numFields();

    std::vector<rtl::JobInput> trace;
    trace.reserve(static_cast<std::size_t>(options.steps));

    // Density follows a mean-reverting walk; cluster events jump it
    // up and dissipation events collapse it for short bursts — the
    // spiky, fast-changing behaviour that defeats reactive control.
    const double density_mean =
        0.42 * (options.minDensity + options.maxDensity);
    double density = density_mean;
    int cluster_steps_left = 0;
    int dissipate_steps_left = 0;

    for (int step = 0; step < options.steps; ++step) {
        if (cluster_steps_left > 0) {
            --cluster_steps_left;
        } else if (dissipate_steps_left > 0) {
            --dissipate_steps_left;
            density = std::max(options.minDensity, density * 0.85);
        } else if (rng.bernoulli(options.clusterProb)) {
            cluster_steps_left =
                static_cast<int>(rng.burstLength(0.6, 8));
            density += options.clusterJump;
        } else if (rng.bernoulli(0.03)) {
            dissipate_steps_left =
                static_cast<int>(rng.burstLength(0.7, 12));
            density *= 0.4;
        }
        density += 0.08 * (density_mean - density) +
            rng.normal(0.0, options.walkSigma);
        density = std::min(options.maxDensity,
                           std::max(options.minDensity, density));

        rtl::JobInput job;
        job.items.reserve(static_cast<std::size_t>(options.particles));
        for (int p = 0; p < options.particles; ++p) {
            rtl::WorkItem item;
            item.fields.assign(num_fields, 0);
            const double n =
                rng.normal(density, std::sqrt(density) * 1.2);
            item.fields[f.neighbors] = std::max<std::int64_t>(
                0, std::min<std::int64_t>(
                       static_cast<std::int64_t>(
                           options.maxDensity * 1.5),
                       static_cast<std::int64_t>(std::llround(n))));
            job.items.push_back(std::move(item));
        }
        trace.push_back(std::move(job));
    }
    return trace;
}

} // namespace workload
} // namespace predvfs
