#include "workload/suite.hh"

#include "util/logging.hh"
#include "workload/buffers.hh"
#include "workload/images.hh"
#include "workload/particles.hh"
#include "workload/video.hh"

namespace predvfs {
namespace workload {

namespace {

void
append(std::vector<rtl::JobInput> &dst, std::vector<rtl::JobInput> src)
{
    for (auto &job : src)
        dst.push_back(std::move(job));
}

} // namespace

BenchmarkWorkload
makeWorkload(const accel::Accelerator &accelerator, std::uint64_t seed)
{
    const rtl::Design &design = accelerator.design();
    const std::string &name = accelerator.name();

    util::Rng root(seed);
    util::Rng train_rng = root.split(1);
    util::Rng test_rng = root.split(2);

    BenchmarkWorkload w;

    if (name == "h264") {
        constexpr int mbs = 396;  // CIF: all clips the same size.
        int clip = 0;
        for (const auto &profile : trainSetProfiles())
            append(w.train, makeVideoClip(design, profile, 300, mbs,
                                          train_rng.split(++clip)));
        clip = 0;
        for (const auto &profile : testSetProfiles())
            append(w.test, makeVideoClip(design, profile, 300, mbs,
                                         test_rng.split(++clip)));
        w.trainDescription = "2 videos (600 frames, same size)";
        w.testDescription = "5 videos (1500 frames, same size)";
    } else if (name == "cjpeg") {
        ImageCorpusOptions options;
        options.sizes = {
            {448, 336}, {512, 384}, {640, 480}, {800, 600},
            {1024, 768}, {1280, 720}, {1600, 900},
        };
        options.minComplexity = 0.10;
        w.train = makeEncodeImages(design, options, train_rng);
        w.test = makeEncodeImages(design, options, test_rng);
        w.trainDescription = "100 images (various sizes)";
        w.testDescription = "100 images (various sizes)";
    } else if (name == "djpeg") {
        ImageCorpusOptions options;
        options.sizes = {
            {640, 480}, {640, 480}, {800, 600}, {800, 600},
            {1024, 768}, {1280, 720}, {1920, 1080},
        };
        w.train = makeDecodeImages(design, options, train_rng);
        w.test = makeDecodeImages(design, options, test_rng);
        w.trainDescription = "100 images (various sizes)";
        w.testDescription = "100 images (various sizes)";
    } else if (name == "md") {
        MdTraceOptions options;
        w.train = makeMdTimesteps(design, options, train_rng);
        w.test = makeMdTimesteps(design, options, test_rng);
        w.trainDescription = "200 steps (particle pos. changes)";
        w.testDescription = "200 steps (particle pos. changes)";
    } else if (name == "stencil") {
        ImageCorpusOptions options;
        options.sizes = {
            {320, 240}, {400, 300}, {400, 300}, {512, 384},
            {512, 384}, {640, 480}, {800, 600}, {1024, 768},
            {1366, 768},
        };
        w.train = makeStencilImages(design, options, train_rng);
        w.test = makeStencilImages(design, options, test_rng);
        w.trainDescription = "100 images (various sizes)";
        w.testDescription = "100 images (various sizes)";
    } else if (name == "aes") {
        BufferCorpusOptions options;
        options.minBytes = 1024 * 1024;
        options.maxBytes = 7 * 1024 * 1024;
        w.train = makeAesBuffers(design, options, train_rng);
        w.test = makeAesBuffers(design, options, test_rng);
        w.trainDescription = "100 pieces of data (various sizes)";
        w.testDescription = "100 pieces of data (various sizes)";
    } else if (name == "sha") {
        BufferCorpusOptions options;
        options.minBytes = 420 * 1024;
        options.maxBytes = 5 * 1024 * 1024;
        w.train = makeShaBuffers(design, options, train_rng);
        w.test = makeShaBuffers(design, options, test_rng);
        w.trainDescription = "100 pieces of data (various sizes)";
        w.testDescription = "100 pieces of data (various sizes)";
    } else {
        util::fatal("no workload defined for accelerator '", name, "'");
    }

    return w;
}

} // namespace workload
} // namespace predvfs
