#include "workload/replay.hh"

#include <algorithm>

#include "util/random.hh"

namespace predvfs {
namespace workload {

std::vector<ReplayPlan>
roundRobinPlans(std::size_t job_count, std::size_t clients)
{
    std::vector<ReplayPlan> plans(std::max<std::size_t>(clients, 1));
    for (std::size_t i = 0; i < job_count; ++i)
        plans[i % plans.size()].indices.push_back(i);
    return plans;
}

std::vector<ReplayPlan>
duplicateHeavyPlans(std::size_t job_count, std::size_t clients,
                    std::size_t requests_per_client,
                    std::size_t hot_jobs, std::uint64_t seed)
{
    std::vector<ReplayPlan> plans(std::max<std::size_t>(clients, 1));
    if (job_count == 0)
        return plans;
    const std::size_t hot = std::min(
        std::max<std::size_t>(hot_jobs, 1), job_count);

    util::Rng root(seed);
    for (std::size_t c = 0; c < plans.size(); ++c) {
        // Independent per-client streams: client c's plan is the same
        // whether 1 or 16 clients run beside it.
        util::Rng rng = root.split(c + 1);
        ReplayPlan &plan = plans[c];
        plan.indices.reserve(requests_per_client);
        for (std::size_t r = 0; r < requests_per_client; ++r) {
            if (rng.bernoulli(0.85)) {
                plan.indices.push_back(static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(hot) - 1)));
            } else {
                plan.indices.push_back(static_cast<std::size_t>(
                    rng.uniformInt(0, static_cast<std::int64_t>(
                                          job_count) - 1)));
            }
        }
    }
    return plans;
}

} // namespace workload
} // namespace predvfs
