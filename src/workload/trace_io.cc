#include "workload/trace_io.hh"

#include <sstream>

#include "util/logging.hh"

namespace predvfs {
namespace workload {

using util::fatal;
using util::fatalIf;
using util::panicIf;

void
writeTraceCsv(std::ostream &os, const rtl::Design &design,
              const std::vector<rtl::JobInput> &jobs)
{
    os << "job";
    for (const auto &field : design.fieldNames())
        os << "," << field;
    os << "\n";

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        for (const auto &item : jobs[j].items) {
            panicIf(item.fields.size() != design.numFields(),
                    "writeTraceCsv: item arity mismatch");
            os << j;
            for (auto v : item.fields)
                os << "," << v;
            os << "\n";
        }
    }
}

std::vector<rtl::JobInput>
readTraceCsv(std::istream &is, const rtl::Design &design)
{
    std::string line;
    fatalIf(!std::getline(is, line), "empty trace file");

    // Validate the header against the design's schema.
    {
        std::istringstream header(line);
        std::string column;
        fatalIf(!std::getline(header, column, ',') || column != "job",
                "trace header must start with 'job'");
        for (const auto &field : design.fieldNames()) {
            fatalIf(!std::getline(header, column, ','),
                    "trace header missing field '", field, "'");
            fatalIf(column != field, "trace header column '", column,
                    "' does not match design field '", field, "'");
        }
        fatalIf(static_cast<bool>(std::getline(header, column, ',')),
                "trace header has extra column '", column, "'");
    }

    std::vector<rtl::JobInput> jobs;
    long long expected_job = -1;

    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string cell;

        fatalIf(!std::getline(row, cell, ','),
                "trace line ", line_no, ": missing job id");
        long long job_id = 0;
        try {
            job_id = std::stoll(cell);
        } catch (...) {
            fatal("trace line ", line_no, ": bad job id '", cell, "'");
        }
        fatalIf(job_id < 0, "trace line ", line_no,
                ": negative job id");
        fatalIf(job_id < expected_job, "trace line ", line_no,
                ": job ids must be non-decreasing");
        while (expected_job < job_id) {
            jobs.emplace_back();
            ++expected_job;
        }

        rtl::WorkItem item;
        item.fields.reserve(design.numFields());
        for (std::size_t f = 0; f < design.numFields(); ++f) {
            fatalIf(!std::getline(row, cell, ','), "trace line ",
                    line_no, ": missing field ",
                    design.fieldNames()[f]);
            try {
                item.fields.push_back(std::stoll(cell));
            } catch (...) {
                fatal("trace line ", line_no, ": bad value '", cell,
                      "'");
            }
        }
        fatalIf(static_cast<bool>(std::getline(row, cell, ',')),
                "trace line ", line_no, ": extra columns");
        jobs.back().items.push_back(std::move(item));
    }

    // Drop trailing empty jobs (ids may have been sparse at the end).
    while (!jobs.empty() && jobs.back().items.empty())
        jobs.pop_back();
    for (std::size_t j = 0; j < jobs.size(); ++j)
        fatalIf(jobs[j].items.empty(), "trace job ", j,
                " has no items (job ids must be dense)");
    return jobs;
}

} // namespace workload
} // namespace predvfs
