#include "util/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace predvfs {
namespace util {

namespace {

/**
 * Parse @p text as an unsigned decimal integer. Returns false (and
 * leaves @p out untouched) on any malformation: empty, sign
 * characters, trailing junk, or overflow. strtoull alone accepts
 * "-5" (wrapping it) and "7 cats" (stopping early); both must fall
 * back instead.
 */
bool
parseUint(const char *text, std::uint64_t &out)
{
    const char *p = text;
    while (std::isspace(static_cast<unsigned char>(*p)))
        ++p;
    if (*p == '\0' || !std::isdigit(static_cast<unsigned char>(*p)))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (errno == ERANGE || end == p || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

} // namespace

std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t lo,
        std::uint64_t hi)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    std::uint64_t value = 0;
    if (!parseUint(env, value)) {
        warn(name, ": not an unsigned integer: '", env,
             "'; using default ", fallback);
        return fallback;
    }
    if (value < lo || value > hi) {
        warn(name, ": ", value, " outside accepted range [", lo, ", ",
             hi, "]; using default ", fallback);
        return fallback;
    }
    return value;
}

std::size_t
envSizeBytes(const char *name, std::size_t fallback)
{
    return static_cast<std::size_t>(
        envUint(name, fallback, 0,
                static_cast<std::uint64_t>(SIZE_MAX)));
}

bool
envFlag(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    const std::string value(env);
    if (value == "1")
        return true;
    if (value == "0")
        return false;
    warn(name, ": expected 0 or 1, got '", value, "'; using default ",
         fallback ? "1" : "0");
    return fallback;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    if (*env == '\0') {
        warn(name, ": set but empty; using default '", fallback, "'");
        return fallback;
    }
    return std::string(env);
}

} // namespace util
} // namespace predvfs
