/**
 * @file
 * ASCII table and CSV emission for the benchmark harness. Every bench
 * binary prints its figure/table reproduction through TablePrinter so
 * the output format is uniform across experiments.
 */

#ifndef PREDVFS_UTIL_TABLE_HH
#define PREDVFS_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace predvfs {
namespace util {

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 * @code
 *   TablePrinter t({"Bench", "Energy (%)", "Misses (%)"});
 *   t.addRow({"h264", format(63.1), format(0.3)});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    /** @return number of data rows added. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits digits after the decimal point. */
std::string fixed(double value, int digits = 2);

/** Format a double as a percentage string, e.g. "36.7". */
std::string pct(double fraction, int digits = 1);

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_TABLE_HH
