/**
 * @file
 * Hardened environment-knob parsing.
 *
 * Every tunable read from the environment (PREDVFS_CACHE_BYTES,
 * PREDVFS_DISABLE_CACHE, the PREDVFS_SERVE_* serving knobs) goes
 * through these helpers so a malformed value has one defined meaning
 * everywhere: warn once and use the documented fallback. Rejected
 * inputs are empty strings, non-numeric text, trailing junk ("64k"),
 * negative numbers (strtoull would silently wrap them), values that
 * overflow the type, and values outside the caller's [lo, hi] range.
 */

#ifndef PREDVFS_UTIL_ENV_HH
#define PREDVFS_UTIL_ENV_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace predvfs {
namespace util {

/**
 * Read an unsigned integer knob.
 *
 * @param name     Environment variable name.
 * @param fallback Value when unset or malformed.
 * @param lo,hi    Inclusive accepted range; out-of-range values warn
 *                 and fall back (they are not clamped — a wildly wrong
 *                 setting should be loud, not silently adjusted).
 */
std::uint64_t envUint(const char *name, std::uint64_t fallback,
                      std::uint64_t lo = 0,
                      std::uint64_t hi = UINT64_MAX);

/** envUint() narrowed to std::size_t, for byte budgets. */
std::size_t envSizeBytes(const char *name, std::size_t fallback);

/**
 * Read a boolean knob: "1" is true, "0" is false, anything else
 * (including empty) warns and falls back.
 */
bool envFlag(const char *name, bool fallback);

/**
 * Read a string knob (PREDVFS_SNAPSHOT). An empty value warns and
 * falls back — an empty path is always a configuration mistake, and
 * silently treating it as "disabled" would hide the typo.
 */
std::string envString(const char *name, const std::string &fallback);

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_ENV_HH
