#include "util/statistics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace predvfs {
namespace util {

RunningStats::RunningStats()
{
    reset();
}

void
RunningStats::reset()
{
    n = 0;
    meanValue = 0.0;
    m2 = 0.0;
    minValue = std::numeric_limits<double>::infinity();
    maxValue = -std::numeric_limits<double>::infinity();
    total = 0.0;
}

void
RunningStats::add(double x)
{
    ++n;
    const double delta = x - meanValue;
    meanValue += delta / static_cast<double>(n);
    m2 += delta * (x - meanValue);
    minValue = std::min(minValue, x);
    maxValue = std::max(maxValue, x);
    total += x;
}

double
RunningStats::mean() const
{
    return n == 0 ? 0.0 : meanValue;
}

double
RunningStats::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    panicIf(values.empty(), "percentile of empty sample set");
    panicIf(p < 0.0 || p > 100.0, "percentile ", p, " out of [0,100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

double
median(std::vector<double> values)
{
    return percentile(std::move(values), 50.0);
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double ss = 0.0;
    for (double v : values)
        ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

BoxSummary
boxSummary(std::vector<double> values)
{
    panicIf(values.empty(), "boxSummary of empty sample set");
    std::sort(values.begin(), values.end());

    BoxSummary box;
    box.q1 = percentile(values, 25.0);
    box.median = percentile(values, 50.0);
    box.q3 = percentile(values, 75.0);

    const double iqr = box.q3 - box.q1;
    const double lo_fence = box.q1 - 1.5 * iqr;
    const double hi_fence = box.q3 + 1.5 * iqr;

    box.whiskerLow = box.q1;
    box.whiskerHigh = box.q3;
    for (double v : values) {
        if (v >= lo_fence) {
            box.whiskerLow = v;
            break;
        }
    }
    for (auto it = values.rbegin(); it != values.rend(); ++it) {
        if (*it <= hi_fence) {
            box.whiskerHigh = *it;
            break;
        }
    }
    for (double v : values) {
        if (v < lo_fence || v > hi_fence)
            box.outliers.push_back(v);
    }
    return box;
}

} // namespace util
} // namespace predvfs
