#include "util/thread_pool.hh"

namespace predvfs {
namespace util {

ThreadPool::ThreadPool(unsigned workers)
    : numWorkers(workers <= 1 ? 0 : workers)
{
    if (numWorkers == 0)
        return;
    errors.resize(numWorkers);
    threads.reserve(numWorkers);
    for (unsigned w = 0; w < numWorkers; ++w)
        threads.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    if (numWorkers == 0)
        return;
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    startCv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::workerLoop(unsigned w)
{
    std::uint64_t seen = 0;
    while (true) {
        const Task *fn = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mutex);
            startCv.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            fn = job;
            n = jobSize;
        }

        // Contiguous shard: always the same slice for the same (n, W).
        const std::size_t begin = w * n / numWorkers;
        const std::size_t end = (w + 1) * n / numWorkers;
        try {
            for (std::size_t i = begin; i < end; ++i)
                (*fn)(w, i);
        } catch (...) {
            errors[w] = std::current_exception();
        }

        {
            std::lock_guard<std::mutex> lock(mutex);
            ++finished;
        }
        doneCv.notify_all();
    }
}

void
ThreadPool::run(std::size_t n, const Task &fn)
{
    if (numWorkers == 0 || n == 0) {
        for (std::size_t i = 0; i < n; ++i)
            fn(0, i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex);
        job = &fn;
        jobSize = n;
        finished = 0;
        for (auto &e : errors)
            e = nullptr;
        ++generation;
    }
    startCv.notify_all();

    {
        std::unique_lock<std::mutex> lock(mutex);
        doneCv.wait(lock, [&] { return finished == numWorkers; });
        job = nullptr;
    }

    for (const std::exception_ptr &e : errors)
        if (e)
            std::rethrow_exception(e);
}

unsigned
ThreadPool::hardwareWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace util
} // namespace predvfs
