/**
 * @file
 * Status-message and error helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated (a bug in this library).
 *            Prints a message and aborts.
 * fatal()  — the simulation cannot continue because of a user-level error
 *            (bad configuration, invalid arguments). Prints and exits(1).
 * warn()   — something is questionable but the run can continue.
 * inform() — normal operating status for the user.
 */

#ifndef PREDVFS_UTIL_LOGGING_HH
#define PREDVFS_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace predvfs {
namespace util {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Route a formatted message to the log sink.
 *
 * @param level Severity class of the message.
 * @param msg   Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Enable or disable Inform-level output (Warn and above always print). */
void setVerbose(bool verbose);

/** @return true if Inform-level output is enabled. */
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Print an informational status message (suppressed unless verbose). */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Inform, detail::format(args...));
}

/** Print a warning; execution continues. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::format(args...));
}

/** Report an unrecoverable user-level error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logMessage(LogLevel::Fatal, detail::format(args...));
    std::exit(1);
}

/** Report a violated internal invariant and abort(). */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logMessage(LogLevel::Panic, detail::format(args...));
    std::abort();
}

/** panic() unless @p cond holds. */
template <typename... Args>
void
panicIf(bool cond, const Args &...args)
{
    if (cond)
        panic(args...);
}

/** fatal() unless @p cond holds. */
template <typename... Args>
void
fatalIf(bool cond, const Args &...args)
{
    if (cond)
        fatal(args...);
}

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_LOGGING_HH
