/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload generation, model
 * initialisation, noise injection) flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** 1.0 (public domain, Blackman & Vigna), chosen for speed
 * and statistical quality without external dependencies.
 */

#ifndef PREDVFS_UTIL_RANDOM_HH
#define PREDVFS_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace predvfs {
namespace util {

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * Instances are cheap to copy; independent streams should be created via
 * split() so that adding draws to one stream does not perturb another.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t nextU64();

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return a standard-normal draw (Box–Muller, cached pair). */
    double normal();

    /** @return a normal draw with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return a Bernoulli draw: true with probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from a discrete distribution.
     *
     * @param weights Non-negative weights; need not be normalised.
     * @return index in [0, weights.size()).
     */
    std::size_t categorical(const std::vector<double> &weights);

    /** @return a geometric-ish burst length in [1, max_len]. */
    std::int64_t burstLength(double continue_prob, std::int64_t max_len);

    /**
     * Derive an independent child stream.
     *
     * @param salt Distinguishes children split from the same parent.
     */
    Rng split(std::uint64_t salt);

  private:
    std::uint64_t s[4];
    double cachedNormal;
    bool hasCachedNormal;
};

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_RANDOM_HH
