/**
 * @file
 * Portable SIMD primitives for the batch kernel's SoA inner loops.
 *
 * The lockstep batch kernel spends its time in a handful of stride-1
 * lane loops: broadcasting one energy addend across every lane,
 * adding a presummed dwell to every lane's cycle count, and filling
 * lane vectors with a constant. At the default -O2 these do not
 * autovectorise, so the helpers here carry an explicit 4-wide path
 * built on GCC/Clang vector extensions, with a plain scalar loop as
 * the portable fallback (and for the tail).
 *
 * Exactness: every helper applies the *same* operation independently
 * per lane — lanes never share an accumulator — so vectorising is a
 * pure reordering of independent scalar operations and cannot change
 * any lane's result. Integer adds additionally run through unsigned
 * arithmetic so lane math wraps mod 2^64 without signed-overflow UB.
 */

#ifndef PREDVFS_UTIL_SIMD_HH
#define PREDVFS_UTIL_SIMD_HH

#include <cstdint>
#include <cstring>

namespace predvfs {
namespace util {
namespace simd {

#if defined(__GNUC__) || defined(__clang__)
#define PREDVFS_SIMD_VECTOR_EXT 1
// The 32-byte vectors are an internal value representation only —
// every helper below has a scalar-typed signature, so the psABI
// warning about passing AVX types without AVX enabled is moot.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
using V4d = double __attribute__((vector_size(32)));
using V4u = std::uint64_t __attribute__((vector_size(32)));

/** Unaligned vector load/store (compile to unaligned moves). */
template <typename V, typename T>
[[gnu::always_inline]] inline V
vload(const T *p)
{
    V v;
    std::memcpy(&v, p, sizeof(V));
    return v;
}

template <typename V, typename T>
[[gnu::always_inline]] inline void
vstore(T *p, V v)
{
    std::memcpy(p, &v, sizeof(V));
}
#endif

/** dst[i] += x for i in [0, n) — independent FP accumulators. */
inline void
addScalarF64(double *dst, std::size_t n, double x)
{
    std::size_t i = 0;
#ifdef PREDVFS_SIMD_VECTOR_EXT
    const V4d vx = {x, x, x, x};
    for (; i + 4 <= n; i += 4)
        vstore(dst + i, vload<V4d>(dst + i) + vx);
#endif
    for (; i < n; ++i)
        dst[i] += x;
}

/** dst[i] += x for i in [0, n), wrapping mod 2^64. */
inline void
addScalarU64(std::uint64_t *dst, std::size_t n, std::uint64_t x)
{
    std::size_t i = 0;
#ifdef PREDVFS_SIMD_VECTOR_EXT
    const V4u vx = {x, x, x, x};
    for (; i + 4 <= n; i += 4)
        vstore(dst + i, vload<V4u>(dst + i) + vx);
#endif
    for (; i < n; ++i)
        dst[i] += x;
}

/** dst[i] = x for i in [0, n). */
inline void
fillU64(std::uint64_t *dst, std::size_t n, std::uint64_t x)
{
    std::size_t i = 0;
#ifdef PREDVFS_SIMD_VECTOR_EXT
    const V4u vx = {x, x, x, x};
    for (; i + 4 <= n; i += 4)
        vstore(dst + i, vx);
#endif
    for (; i < n; ++i)
        dst[i] = x;
}

/** dst[i] = x for i in [0, n) (signed lanes). */
inline void
fillI64(std::int64_t *dst, std::size_t n, std::int64_t x)
{
    fillU64(reinterpret_cast<std::uint64_t *>(dst), n,
            static_cast<std::uint64_t>(x));
}

/**
 * dst[i] += a * src[i] for i in [0, n), wrapping mod 2^64 (the affine
 * lane loop). Unsigned lane arithmetic keeps the wrap defined; the
 * bit pattern equals the tree walker's op-by-op result mod 2^64.
 */
inline void
addScaledI64(std::int64_t *dst, const std::int64_t *src, std::size_t n,
             std::int64_t a)
{
    const std::uint64_t ua = static_cast<std::uint64_t>(a);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = static_cast<std::uint64_t>(dst[i]) +
            ua * static_cast<std::uint64_t>(src[i]);
        dst[i] = static_cast<std::int64_t>(r);
    }
}

#ifdef PREDVFS_SIMD_VECTOR_EXT
#pragma GCC diagnostic pop
#endif

} // namespace simd
} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_SIMD_HH
