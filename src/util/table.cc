#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace predvfs {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : header(std::move(headers))
{
    panicIf(header.empty(), "TablePrinter needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != header.size(),
            "row arity ", cells.size(), " != header arity ", header.size());
    rows.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit_row(header);
    for (const auto &row : rows)
        emit_row(row);
}

std::string
fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
pct(double fraction, int digits)
{
    return fixed(fraction * 100.0, digits);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace util
} // namespace predvfs
