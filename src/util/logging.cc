#include "util/logging.hh"

#include <cstdio>

namespace predvfs {
namespace util {

namespace {

bool verboseFlag = true;

const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Fatal: return "fatal: ";
      case LogLevel::Panic: return "panic: ";
    }
    return "?: ";
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Inform && !verboseFlag)
        return;
    std::fprintf(stderr, "%s%s\n", prefixFor(level), msg.c_str());
}

} // namespace util
} // namespace predvfs
