/**
 * @file
 * A deterministic fixed-shard thread pool.
 *
 * Parallelism in this codebase must never change results: prepared
 * jobs, trained predictors, and experiment metrics have to be
 * bit-identical at any worker count, or the perf work stops being a
 * pure optimisation. This pool therefore rejects work stealing and
 * dynamic scheduling entirely:
 *
 *  - run(n, fn) splits the index range [0, n) into one contiguous
 *    shard per worker (worker w gets [w*n/W, (w+1)*n/W)), always the
 *    same partition for the same (n, W);
 *  - fn(worker, i) must write only to the i-th output slot (and to
 *    per-worker scratch selected by @p worker); under that contract
 *    the output vector is byte-identical to a serial loop, in order,
 *    regardless of how shard execution interleaves;
 *  - a pool with zero or one worker runs everything inline on the
 *    calling thread, so serial remains the trivial special case.
 *
 * Workers are persistent: started once in the constructor, woken per
 * run() by a generation counter, joined in the destructor. run() is
 * a full barrier — it returns only after every shard finished — and
 * rethrows the first exception a shard raised (by lowest worker id).
 */

#ifndef PREDVFS_UTIL_THREAD_POOL_HH
#define PREDVFS_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace predvfs {
namespace util {

class ThreadPool
{
  public:
    /** Work shared by one run() call, indexed (worker, item). */
    using Task = std::function<void(unsigned, std::size_t)>;

    /**
     * @param workers Worker threads to start; 0 and 1 both mean
     *                "inline on the caller" (no threads at all).
     */
    explicit ThreadPool(unsigned workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Execute fn(worker, i) for every i in [0, n) and wait for all of
     * it. Deterministic sharding; see the file comment for the output
     * contract fn must follow.
     */
    void run(std::size_t n, const Task &fn);

    /** @return worker threads backing this pool (0 = inline). */
    unsigned workers() const { return numWorkers; }

    /**
     * Worker-id values fn may observe: max(workers, 1). Size
     * per-worker scratch arrays with this.
     */
    unsigned workerSlots() const { return numWorkers ? numWorkers : 1; }

    /** @return the hardware concurrency (at least 1). */
    static unsigned hardwareWorkers();

  private:
    void workerLoop(unsigned w);

    const unsigned numWorkers;
    std::vector<std::thread> threads;

    std::mutex mutex;
    std::condition_variable startCv;
    std::condition_variable doneCv;
    const Task *job = nullptr;
    std::size_t jobSize = 0;
    std::uint64_t generation = 0;
    unsigned finished = 0;
    bool stopping = false;
    std::vector<std::exception_ptr> errors;
};

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_THREAD_POOL_HH
