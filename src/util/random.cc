#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace predvfs {
namespace util {

namespace {

/** splitmix64: seed expander recommended by the xoshiro authors. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedNormal(0.0), hasCachedNormal(false)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "uniformInt: empty range [", lo, ", ", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal) {
        hasCachedNormal = false;
        return cachedNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    hasCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    panicIf(weights.empty(), "categorical: no weights");
    double total = 0.0;
    for (double w : weights) {
        panicIf(w < 0.0, "categorical: negative weight ", w);
        total += w;
    }
    panicIf(total <= 0.0, "categorical: weights sum to zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::int64_t
Rng::burstLength(double continue_prob, std::int64_t max_len)
{
    std::int64_t len = 1;
    while (len < max_len && bernoulli(continue_prob))
        ++len;
    return len;
}

Rng
Rng::split(std::uint64_t salt)
{
    // Mix the salt with fresh output so children are decorrelated from
    // both the parent state and each other.
    std::uint64_t seed = nextU64() ^ (salt * 0x2545f4914f6cdd1dULL);
    return Rng(seed);
}

} // namespace util
} // namespace predvfs
