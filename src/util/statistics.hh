/**
 * @file
 * Descriptive statistics used throughout the evaluation harness:
 * streaming summaries, percentiles, and the box-and-whisker summary
 * needed to reproduce the paper's Figure 10.
 */

#ifndef PREDVFS_UTIL_STATISTICS_HH
#define PREDVFS_UTIL_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace predvfs {
namespace util {

/**
 * Streaming accumulator for count/mean/variance/min/max.
 *
 * Uses Welford's algorithm so variance is numerically stable even for
 * long runs with large magnitudes.
 */
class RunningStats
{
  public:
    RunningStats();

    /** Fold one sample into the summary. */
    void add(double x);

    /** @return number of samples folded in so far. */
    std::size_t count() const { return n; }

    /** @return arithmetic mean (0 if empty). */
    double mean() const;

    /** @return population variance (0 if fewer than 2 samples). */
    double variance() const;

    /** @return population standard deviation. */
    double stddev() const;

    /** @return smallest sample (+inf if empty). */
    double min() const { return minValue; }

    /** @return largest sample (-inf if empty). */
    double max() const { return maxValue; }

    /** @return sum of all samples. */
    double sum() const { return total; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n;
    double meanValue;
    double m2;
    double minValue;
    double maxValue;
    double total;
};

/**
 * Linear-interpolated percentile of a sample set.
 *
 * @param values Samples (copied and sorted internally).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/** @return arithmetic mean of @p values (0 for empty input). */
double mean(const std::vector<double> &values);

/** @return median of @p values. */
double median(std::vector<double> values);

/** @return sample standard deviation of @p values. */
double stddev(const std::vector<double> &values);

/**
 * Five-number box-and-whisker summary in the matplotlib convention used
 * by the paper's Figure 10: box at Q1..Q3, whiskers at the most extreme
 * samples within 1.5 IQR of the box, everything beyond is an outlier.
 */
struct BoxSummary
{
    double q1;                     //!< 25th percentile.
    double median;                 //!< 50th percentile.
    double q3;                     //!< 75th percentile.
    double whiskerLow;             //!< Lowest non-outlier sample.
    double whiskerHigh;            //!< Highest non-outlier sample.
    std::vector<double> outliers;  //!< Samples beyond the whiskers.
};

/** Compute a BoxSummary; @p values must be non-empty. */
BoxSummary boxSummary(std::vector<double> values);

} // namespace util
} // namespace predvfs

#endif // PREDVFS_UTIL_STATISTICS_HH
