/**
 * @file
 * Minimal dense linear algebra for the prediction-model training:
 * vectors, row-major matrices, and a Cholesky solver for the
 * least-squares baselines. Deliberately small — the asymmetric-Lasso
 * fit only needs matrix-vector products and vector arithmetic.
 */

#ifndef PREDVFS_OPT_MATRIX_HH
#define PREDVFS_OPT_MATRIX_HH

#include <cstddef>
#include <vector>

namespace predvfs {
namespace opt {

/** A dense real vector. */
class Vector
{
  public:
    Vector() = default;

    /** A zero vector of dimension @p n. */
    explicit Vector(std::size_t n) : data(n, 0.0) {}

    /** Wrap existing values. */
    explicit Vector(std::vector<double> values) : data(std::move(values)) {}

    std::size_t size() const { return data.size(); }
    double &operator[](std::size_t i) { return data[i]; }
    double operator[](std::size_t i) const { return data[i]; }
    const std::vector<double> &values() const { return data; }

    /** Euclidean norm. */
    double norm() const;

    /** Sum of absolute values. */
    double norm1() const;

    /** Dot product; dimensions must match. */
    double dot(const Vector &other) const;

    Vector operator+(const Vector &other) const;
    Vector operator-(const Vector &other) const;
    Vector operator*(double scalar) const;

    /** In-place axpy: *this += alpha * x. */
    void axpy(double alpha, const Vector &x);

  private:
    std::vector<double> data;
};

/** A dense row-major matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** A zero matrix with @p rows x @p cols entries. */
    Matrix(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return numRows; }
    std::size_t cols() const { return numCols; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** @return y = A x. */
    Vector multiply(const Vector &x) const;

    /** @return y = A^T x. */
    Vector multiplyTransposed(const Vector &x) const;

    /**
     * y = A x into a caller-owned vector of size rows() — the
     * allocation-free form of multiply() with the identical
     * floating-point operation sequence.
     */
    void multiplyInto(const Vector &x, Vector &y) const;

    /** y = A^T x into a caller-owned vector of size cols(); same
     *  operation sequence as multiplyTransposed(). */
    void multiplyTransposedInto(const Vector &x, Vector &y) const;

    /** @return A^T A (a cols x cols symmetric matrix). */
    Matrix gram() const;

    /**
     * Largest eigenvalue of A^T A estimated by power iteration; this
     * is the Lipschitz constant of the least-squares gradient, used to
     * pick the FISTA step size.
     */
    double gramSpectralNorm(int iterations = 60) const;

  private:
    std::size_t numRows = 0;
    std::size_t numCols = 0;
    std::vector<double> data;
};

/**
 * Solve the symmetric positive-definite system M x = b by Cholesky
 * factorisation. panics if M is not SPD (within jitter tolerance).
 *
 * @param m SPD matrix (e.g. a Gram matrix plus ridge).
 * @param b Right-hand side.
 */
Vector choleskySolve(const Matrix &m, const Vector &b);

} // namespace opt
} // namespace predvfs

#endif // PREDVFS_OPT_MATRIX_HH
