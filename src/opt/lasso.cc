#include "opt/lasso.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace predvfs {
namespace opt {

using util::panicIf;

std::size_t
FitResult::nonZeroCount(double threshold) const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < beta.size(); ++i)
        if (std::fabs(beta[i]) > threshold)
            ++n;
    return n;
}

double
FitResult::predict(const Vector &x) const
{
    return beta.dot(x) + intercept;
}

namespace {

/** Asymmetric quadratic loss over residuals (no L1 term). */
double
asymmetricLoss(const Vector &residual, double alpha)
{
    double loss = 0.0;
    for (std::size_t i = 0; i < residual.size(); ++i) {
        const double r = residual[i];
        loss += (r > 0.0 ? 1.0 : alpha) * r * r;
    }
    return loss;
}

double
softThreshold(double v, double t)
{
    if (v > t)
        return v - t;
    if (v < -t)
        return v + t;
    return 0.0;
}

} // namespace

double
AsymmetricLasso::objective(const Matrix &x, const Vector &y,
                           const Vector &beta, double intercept,
                           const LassoConfig &config)
{
    Vector residual = x.multiply(beta);
    for (std::size_t i = 0; i < residual.size(); ++i)
        residual[i] += intercept - y[i];
    return asymmetricLoss(residual, config.alpha) +
        config.gamma * beta.norm1();
}

FitResult
AsymmetricLasso::fit(const Matrix &x, const Vector &y,
                     const LassoConfig &config)
{
    panicIf(x.rows() != y.size(), "lasso: sample count mismatch");
    panicIf(x.rows() == 0, "lasso: no training samples");
    panicIf(config.alpha <= 0.0, "lasso: alpha must be positive");
    panicIf(config.gamma < 0.0, "lasso: gamma must be non-negative");

    const std::size_t n = x.rows();
    const std::size_t p = x.cols();

    // Lipschitz constant of the smooth part's gradient over the
    // augmented variable (beta, intercept): 2 max(1, alpha) times the
    // largest eigenvalue of [X 1]^T [X 1]. The intercept column of
    // ones adds at most n to the spectral norm; bounding it that way
    // avoids materialising the augmented matrix.
    const double spectral =
        x.gramSpectralNorm() + static_cast<double>(n);
    const double lipschitz =
        2.0 * std::max(1.0, config.alpha) * std::max(spectral, 1e-12);
    const double step = 1.0 / lipschitz;

    FitResult result;
    result.beta = Vector(p);
    result.intercept = 0.0;

    Vector beta = result.beta;
    double intercept = 0.0;
    Vector z_beta = beta;          // Momentum point.
    double z_intercept = intercept;
    double t = 1.0;

    double prev_obj =
        objective(x, y, beta, intercept, config);

    // Iteration scratch, allocated once per fit. The soft-threshold
    // scale is loop-invariant (gamma and the step never change), so it
    // hoists too; every in-place update below performs the exact
    // floating-point operation sequence of the allocating form it
    // replaces, keeping FitResult bit-identical.
    Vector residual(n);
    Vector g_r(n);
    Vector g_beta(p);
    Vector beta_next(p);
    const double thresh = config.gamma * step;

    int iter = 0;
    for (; iter < config.maxIterations; ++iter) {
        // Gradient of the smooth part at the momentum point.
        x.multiplyInto(z_beta, residual);
        for (std::size_t i = 0; i < n; ++i)
            residual[i] += z_intercept - y[i];
        for (std::size_t i = 0; i < n; ++i) {
            const double r = residual[i];
            g_r[i] = 2.0 * (r > 0.0 ? 1.0 : config.alpha) * r;
        }
        x.multiplyTransposedInto(g_r, g_beta);
        double g_intercept = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            g_intercept += g_r[i];

        // Proximal gradient step (soft threshold on beta only).
        for (std::size_t j = 0; j < p; ++j)
            beta_next[j] =
                softThreshold(z_beta[j] - step * g_beta[j], thresh);
        const double intercept_next = z_intercept - step * g_intercept;

        // Nesterov momentum update.
        const double t_next =
            (1.0 + std::sqrt(1.0 + 4.0 * t * t)) / 2.0;
        const double momentum = (t - 1.0) / t_next;
        for (std::size_t j = 0; j < p; ++j)
            z_beta[j] =
                beta_next[j] + (beta_next[j] - beta[j]) * momentum;
        z_intercept =
            intercept_next + (intercept_next - intercept) * momentum;

        beta = beta_next;
        intercept = intercept_next;
        t = t_next;

        if ((iter + 1) % 10 == 0 || iter + 1 == config.maxIterations) {
            const double obj =
                objective(x, y, beta, intercept, config);
            const double denom = std::max(std::fabs(prev_obj), 1.0);
            if (std::fabs(prev_obj - obj) / denom < config.tolerance) {
                result.converged = true;
                prev_obj = obj;
                ++iter;
                break;
            }
            // FISTA is not monotone; restart momentum on an increase
            // to recover monotone-ish behaviour.
            if (obj > prev_obj) {
                z_beta = beta;
                z_intercept = intercept;
                t = 1.0;
            }
            prev_obj = obj;
        }
    }

    result.beta = beta;
    result.intercept = intercept;
    result.iterations = iter;
    result.objective = objective(x, y, beta, intercept, config);
    return result;
}

} // namespace opt
} // namespace predvfs
