/**
 * @file
 * The paper's prediction-model training objective (Section 3.4):
 *
 *   minimize  ||pos(X b + c - y)||^2 + alpha ||neg(X b + c - y)||^2
 *      b,c                                        + gamma ||b||_1
 *
 * where pos(x) = max(x, 0), neg(x) = max(-x, 0), alpha > 1 penalises
 * under-prediction (which risks deadline misses) more than
 * over-prediction, and the L1 term drives most coefficients to exactly
 * zero so the hardware slice only needs a handful of features. The
 * intercept c is not penalised.
 *
 * The objective is convex with an L-Lipschitz smooth part, so it is
 * solved with FISTA (accelerated proximal gradient): gradient steps on
 * the asymmetric quadratic, soft-thresholding as the L1 proximal
 * operator, and Nesterov momentum.
 */

#ifndef PREDVFS_OPT_LASSO_HH
#define PREDVFS_OPT_LASSO_HH

#include "opt/matrix.hh"

namespace predvfs {
namespace opt {

/** Hyper-parameters of the asymmetric Lasso fit. */
struct LassoConfig
{
    double alpha = 4.0;    //!< Under-prediction penalty weight (> 1).
    double gamma = 1.0;    //!< L1 sparsity weight (>= 0).
    int maxIterations = 4000;
    double tolerance = 1e-8;  //!< Relative objective-change stop rule.
};

/** Outcome of a fit. */
struct FitResult
{
    Vector beta;          //!< Feature coefficients.
    double intercept = 0.0;
    int iterations = 0;
    double objective = 0.0;
    bool converged = false;

    /** Number of coefficients with magnitude above @p threshold. */
    std::size_t nonZeroCount(double threshold = 1e-9) const;

    /** Predict one sample given its feature vector. */
    double predict(const Vector &x) const;
};

/** Trainer for the asymmetric-penalty Lasso objective. */
class AsymmetricLasso
{
  public:
    /**
     * Evaluate the objective at a candidate model.
     *
     * @param x Feature matrix (rows = samples).
     * @param y Targets.
     */
    static double objective(const Matrix &x, const Vector &y,
                            const Vector &beta, double intercept,
                            const LassoConfig &config);

    /**
     * Fit the model with FISTA.
     *
     * @param x Feature matrix (rows = samples). Standardise columns
     *          first (see Standardizer) or gamma is meaningless.
     * @param y Targets.
     */
    static FitResult fit(const Matrix &x, const Vector &y,
                         const LassoConfig &config);
};

} // namespace opt
} // namespace predvfs

#endif // PREDVFS_OPT_LASSO_HH
