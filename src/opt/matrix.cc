#include "opt/matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace predvfs {
namespace opt {

using util::panicIf;

double
Vector::norm() const
{
    double ss = 0.0;
    for (double v : data)
        ss += v * v;
    return std::sqrt(ss);
}

double
Vector::norm1() const
{
    double s = 0.0;
    for (double v : data)
        s += std::fabs(v);
    return s;
}

double
Vector::dot(const Vector &other) const
{
    panicIf(size() != other.size(), "dot: dimension mismatch ",
            size(), " vs ", other.size());
    double s = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        s += data[i] * other.data[i];
    return s;
}

Vector
Vector::operator+(const Vector &other) const
{
    panicIf(size() != other.size(), "operator+: dimension mismatch");
    Vector out(*this);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] += other.data[i];
    return out;
}

Vector
Vector::operator-(const Vector &other) const
{
    panicIf(size() != other.size(), "operator-: dimension mismatch");
    Vector out(*this);
    for (std::size_t i = 0; i < data.size(); ++i)
        out.data[i] -= other.data[i];
    return out;
}

Vector
Vector::operator*(double scalar) const
{
    Vector out(*this);
    for (double &v : out.data)
        v *= scalar;
    return out;
}

void
Vector::axpy(double alpha, const Vector &x)
{
    panicIf(size() != x.size(), "axpy: dimension mismatch");
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] += alpha * x.data[i];
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : numRows(rows), numCols(cols), data(rows * cols, 0.0)
{
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    panicIf(r >= numRows || c >= numCols,
            "Matrix::at(", r, ", ", c, ") out of ", numRows, "x", numCols);
    return data[r * numCols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    panicIf(r >= numRows || c >= numCols,
            "Matrix::at(", r, ", ", c, ") out of ", numRows, "x", numCols);
    return data[r * numCols + c];
}

Vector
Matrix::multiply(const Vector &x) const
{
    Vector y(numRows);
    multiplyInto(x, y);
    return y;
}

void
Matrix::multiplyInto(const Vector &x, Vector &y) const
{
    panicIf(x.size() != numCols, "multiply: dimension mismatch");
    panicIf(y.size() != numRows, "multiplyInto: output dimension");
    for (std::size_t r = 0; r < numRows; ++r) {
        double s = 0.0;
        const double *row = &data[r * numCols];
        for (std::size_t c = 0; c < numCols; ++c)
            s += row[c] * x[c];
        y[r] = s;
    }
}

Vector
Matrix::multiplyTransposed(const Vector &x) const
{
    Vector y(numCols);
    multiplyTransposedInto(x, y);
    return y;
}

void
Matrix::multiplyTransposedInto(const Vector &x, Vector &y) const
{
    panicIf(x.size() != numRows, "multiplyTransposed: dimension mismatch");
    panicIf(y.size() != numCols, "multiplyTransposedInto: output dimension");
    for (std::size_t c = 0; c < numCols; ++c)
        y[c] = 0.0;
    for (std::size_t r = 0; r < numRows; ++r) {
        const double xr = x[r];
        if (xr == 0.0)
            continue;
        const double *row = &data[r * numCols];
        for (std::size_t c = 0; c < numCols; ++c)
            y[c] += row[c] * xr;
    }
}

Matrix
Matrix::gram() const
{
    Matrix g(numCols, numCols);
    for (std::size_t r = 0; r < numRows; ++r) {
        const double *row = &data[r * numCols];
        for (std::size_t i = 0; i < numCols; ++i) {
            if (row[i] == 0.0)
                continue;
            for (std::size_t j = i; j < numCols; ++j)
                g.at(i, j) += row[i] * row[j];
        }
    }
    for (std::size_t i = 0; i < numCols; ++i)
        for (std::size_t j = 0; j < i; ++j)
            g.at(i, j) = g.at(j, i);
    return g;
}

double
Matrix::gramSpectralNorm(int iterations) const
{
    if (numRows == 0 || numCols == 0)
        return 0.0;
    Vector v(numCols);
    // Deterministic non-degenerate start vector.
    for (std::size_t i = 0; i < numCols; ++i)
        v[i] = 1.0 + 0.01 * static_cast<double>(i % 7);

    double lambda = 0.0;
    for (int it = 0; it < iterations; ++it) {
        Vector w = multiplyTransposed(multiply(v));
        const double n = w.norm();
        if (n <= 1e-300)
            return 0.0;
        lambda = n / (v.norm() <= 1e-300 ? 1.0 : v.norm());
        v = w * (1.0 / n);
    }
    // One Rayleigh quotient step for a tighter estimate.
    Vector w = multiplyTransposed(multiply(v));
    const double vv = v.dot(v);
    if (vv > 1e-300)
        lambda = v.dot(w) / vv;
    return lambda;
}

Vector
choleskySolve(const Matrix &m, const Vector &b)
{
    panicIf(m.rows() != m.cols(), "choleskySolve: matrix not square");
    panicIf(b.size() != m.rows(), "choleskySolve: rhs dimension mismatch");
    const std::size_t n = m.rows();

    // Factor M = L L^T.
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = m.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                panicIf(s <= 0.0,
                        "choleskySolve: matrix not positive definite "
                        "(pivot ", s, " at ", i, ")");
                l.at(i, i) = std::sqrt(s);
            } else {
                l.at(i, j) = s / l.at(j, j);
            }
        }
    }

    // Forward substitution: L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l.at(i, k) * y[k];
        y[i] = s / l.at(i, i);
    }

    // Back substitution: L^T x = y.
    Vector x(n);
    for (std::size_t ii = n; ii > 0; --ii) {
        const std::size_t i = ii - 1;
        double s = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            s -= l.at(k, i) * x[k];
        x[i] = s / l.at(i, i);
    }
    return x;
}

} // namespace opt
} // namespace predvfs
