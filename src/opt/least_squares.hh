/**
 * @file
 * Classic least-squares baselines for the prediction model: ordinary
 * least squares and ridge regression via the normal equations. The
 * paper motivates the asymmetric Lasso by contrasting it with exactly
 * this estimator (uses all features, treats under- and over-prediction
 * equally); the ablation benches quantify that contrast.
 */

#ifndef PREDVFS_OPT_LEAST_SQUARES_HH
#define PREDVFS_OPT_LEAST_SQUARES_HH

#include "opt/lasso.hh"
#include "opt/matrix.hh"

namespace predvfs {
namespace opt {

/**
 * Fit y ~ X beta + c with an L2 penalty on beta (not on c).
 *
 * @param x     Feature matrix (rows = samples).
 * @param y     Targets.
 * @param ridge L2 weight; use a small positive value (default 1e-8
 *              times trace scale) to regularise collinear features,
 *              which feature sets from real control units are full of.
 */
FitResult leastSquares(const Matrix &x, const Vector &y,
                       double ridge = 1e-6);

} // namespace opt
} // namespace predvfs

#endif // PREDVFS_OPT_LEAST_SQUARES_HH
