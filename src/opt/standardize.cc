#include "opt/standardize.hh"

#include <cmath>

#include "util/logging.hh"

namespace predvfs {
namespace opt {

using util::panicIf;

Standardizer::Standardizer(const Matrix &x)
{
    panicIf(x.rows() == 0, "Standardizer: empty training matrix");
    const std::size_t n = x.rows();
    const std::size_t p = x.cols();
    mu.assign(p, 0.0);
    sigma.assign(p, 1.0);

    for (std::size_t c = 0; c < p; ++c) {
        double sum = 0.0;
        for (std::size_t r = 0; r < n; ++r)
            sum += x.at(r, c);
        mu[c] = sum / static_cast<double>(n);

        double ss = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            const double d = x.at(r, c) - mu[c];
            ss += d * d;
        }
        const double sd = std::sqrt(ss / static_cast<double>(n));
        // Constant columns carry no signal; keep scale 1 so their
        // standardised value is exactly 0 and Lasso zeroes them out.
        sigma[c] = sd > 1e-12 ? sd : 1.0;
    }
}

Matrix
Standardizer::transform(const Matrix &x) const
{
    panicIf(x.cols() != mu.size(),
            "Standardizer::transform: column mismatch");
    Matrix out(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            out.at(r, c) = (x.at(r, c) - mu[c]) / sigma[c];
    return out;
}

void
Standardizer::unscale(const Vector &beta_std, double intercept_std,
                      Vector &beta_raw, double &intercept_raw) const
{
    panicIf(beta_std.size() != mu.size(),
            "Standardizer::unscale: dimension mismatch");
    beta_raw = Vector(beta_std.size());
    intercept_raw = intercept_std;
    for (std::size_t c = 0; c < mu.size(); ++c) {
        beta_raw[c] = beta_std[c] / sigma[c];
        intercept_raw -= beta_std[c] * mu[c] / sigma[c];
    }
}

} // namespace opt
} // namespace predvfs
