/**
 * @file
 * Feature standardisation for the training pipeline.
 *
 * Lasso's L1 penalty is scale-sensitive: a feature measured in
 * thousands would be penalised far less per unit of effect than one
 * measured in units. The Standardizer maps each column to zero mean
 * and unit variance on the training set, and can fold the learned
 * affine transform back into model coefficients so that the runtime
 * predictor works on raw feature values (one dot product, no
 * normalisation hardware).
 */

#ifndef PREDVFS_OPT_STANDARDIZE_HH
#define PREDVFS_OPT_STANDARDIZE_HH

#include <vector>

#include "opt/matrix.hh"

namespace predvfs {
namespace opt {

/** Per-column affine normaliser learned from a training matrix. */
class Standardizer
{
  public:
    /** Learn column means and scales from @p x (rows = samples). */
    explicit Standardizer(const Matrix &x);

    /** @return the standardised copy of @p x. */
    Matrix transform(const Matrix &x) const;

    /**
     * Fold standardised-space coefficients back to raw space.
     *
     * Given beta_std (length = columns) and intercept_std such that
     * prediction = x_std . beta_std + intercept_std, produce
     * (beta_raw, intercept_raw) with identical predictions on raw x.
     */
    void unscale(const Vector &beta_std, double intercept_std,
                 Vector &beta_raw, double &intercept_raw) const;

    const std::vector<double> &means() const { return mu; }
    const std::vector<double> &scales() const { return sigma; }

  private:
    std::vector<double> mu;
    std::vector<double> sigma;  //!< 1.0 for constant columns.
};

} // namespace opt
} // namespace predvfs

#endif // PREDVFS_OPT_STANDARDIZE_HH
