#include "opt/least_squares.hh"

#include "util/logging.hh"

namespace predvfs {
namespace opt {

using util::panicIf;

FitResult
leastSquares(const Matrix &x, const Vector &y, double ridge)
{
    panicIf(x.rows() != y.size(), "leastSquares: sample count mismatch");
    panicIf(x.rows() == 0, "leastSquares: no samples");
    panicIf(ridge < 0.0, "leastSquares: negative ridge");

    const std::size_t n = x.rows();
    const std::size_t p = x.cols();

    // Augment with the intercept column: solve over (beta, c).
    Matrix xa(n, p + 1);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < p; ++c)
            xa.at(r, c) = x.at(r, c);
        xa.at(r, p) = 1.0;
    }

    Matrix gram = xa.gram();
    // Ridge on features only; a hair of jitter on the intercept keeps
    // the factorisation positive definite for degenerate inputs.
    for (std::size_t i = 0; i < p; ++i)
        gram.at(i, i) += ridge;
    gram.at(p, p) += 1e-12;

    const Vector rhs = xa.multiplyTransposed(y);
    const Vector solution = choleskySolve(gram, rhs);

    FitResult result;
    result.beta = Vector(p);
    for (std::size_t i = 0; i < p; ++i)
        result.beta[i] = solution[i];
    result.intercept = solution[p];
    result.converged = true;
    result.iterations = 1;

    // Report the symmetric squared error as the objective.
    Vector residual = x.multiply(result.beta);
    double obj = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double r = residual[i] + result.intercept - y[i];
        obj += r * r;
    }
    result.objective = obj;
    return result;
}

} // namespace opt
} // namespace predvfs
