#include "sim/fault.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/random.hh"

namespace predvfs {
namespace sim {

using util::panicIf;

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SliceReadout: return "slice-readout";
      case FaultKind::SliceStall: return "slice-stall";
      case FaultKind::ModelCorruption: return "model-corruption";
      case FaultKind::SwitchDenied: return "switch-denied";
      case FaultKind::SwitchSettle: return "switch-settle";
      case FaultKind::OodSpike: return "ood-spike";
    }
    return "?";
}

FaultTrigger
FaultTrigger::probabilistic(double p)
{
    panicIf(p < 0.0 || p > 1.0, "FaultTrigger: probability ", p,
            " outside [0, 1]");
    FaultTrigger t;
    t.mode = Mode::Probabilistic;
    t.probability = p;
    return t;
}

FaultTrigger
FaultTrigger::every(std::size_t interval, std::size_t phase)
{
    panicIf(interval == 0, "FaultTrigger: interval must be positive");
    FaultTrigger t;
    t.mode = Mode::Interval;
    t.interval = interval;
    t.phase = phase;
    return t;
}

FaultTrigger
FaultTrigger::scripted(std::vector<std::size_t> jobs)
{
    FaultTrigger t;
    t.mode = Mode::Scripted;
    t.jobs = std::move(jobs);
    return t;
}

bool
JobFaults::any() const
{
    return stuckReadout || readoutFlipBit != noBitFlip ||
        sliceStallFactor != 1.0 || modelScale != 1.0 ||
        oodScale != 1.0 || switchDenied || settleFactor != 1.0;
}

const JobFaults &
FaultSchedule::at(std::size_t job) const
{
    panicIf(job >= perJob.size(), "FaultSchedule::at: job ", job,
            " past schedule of ", perJob.size());
    return perJob[job];
}

std::size_t
FaultSchedule::firings(FaultKind kind) const
{
    return counts[static_cast<std::size_t>(kind)];
}

std::size_t
FaultSchedule::totalFirings() const
{
    std::size_t total = 0;
    for (const auto c : counts)
        total += c;
    return total;
}

std::size_t
FaultSchedule::faultedJobs() const
{
    std::size_t n = 0;
    for (const auto &f : perJob)
        n += f.any() ? 1 : 0;
    return n;
}

void
FaultSchedule::applyPrepareFaults(
    std::vector<core::PreparedJob> &jobs) const
{
    panicIf(jobs.size() > perJob.size(),
            "FaultSchedule: prepared stream of ", jobs.size(),
            " jobs exceeds schedule of ", perJob.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobFaults &f = perJob[i];
        core::PreparedJob &job = jobs[i];
        // Model corruption first: a readout fault on the same job
        // supersedes whatever the (corrupted) model would report.
        if (f.modelScale != 1.0)
            job.predictedCycles *= f.modelScale;
        // Corrupted readouts clamp to one cycle: the register still
        // holds *a* value, and downstream code treats a non-positive
        // prediction as "no predictor attached".
        if (f.stuckReadout) {
            job.predictedCycles = 1.0;
        } else if (f.readoutFlipBit != noBitFlip) {
            const auto raw = static_cast<std::uint64_t>(
                std::max(0.0, job.predictedCycles));
            job.predictedCycles = std::max(
                1.0, static_cast<double>(
                         raw ^ (std::uint64_t{1} << f.readoutFlipBit)));
        }
        if (f.sliceStallFactor != 1.0)
            job.sliceCycles = static_cast<std::uint64_t>(
                static_cast<double>(job.sliceCycles) *
                f.sliceStallFactor);
        if (f.oodScale != 1.0) {
            job.cycles = static_cast<std::uint64_t>(
                static_cast<double>(job.cycles) * f.oodScale);
            job.energyUnits *= f.oodScale;
        }
    }
}

std::string
FaultSchedule::summary() const
{
    std::ostringstream os;
    os << faultedJobs() << "/" << perJob.size() << " jobs faulted (";
    bool first = true;
    for (std::size_t k = 0; k < numFaultKinds; ++k) {
        if (counts[k] == 0)
            continue;
        if (!first)
            os << ", ";
        os << faultKindName(static_cast<FaultKind>(k)) << " x"
           << counts[k];
        first = false;
    }
    if (first)
        os << "none";
    os << ")";
    return os.str();
}

FaultPlan::FaultPlan(std::uint64_t seed) : rngSeed(seed)
{
}

FaultPlan &
FaultPlan::add(FaultModel model)
{
    panicIf(model.magnitude <= 0.0,
            "FaultPlan: non-positive magnitude for ",
            faultKindName(model.kind));
    faultModels.push_back(std::move(model));
    return *this;
}

FaultPlan &
FaultPlan::sliceReadout(FaultTrigger trigger)
{
    return add({FaultKind::SliceReadout, std::move(trigger), 1.0});
}

FaultPlan &
FaultPlan::sliceStall(FaultTrigger trigger, double factor)
{
    return add({FaultKind::SliceStall, std::move(trigger), factor});
}

FaultPlan &
FaultPlan::modelCorruption(FaultTrigger trigger, double scale)
{
    return add({FaultKind::ModelCorruption, std::move(trigger), scale});
}

FaultPlan &
FaultPlan::switchDenied(FaultTrigger trigger)
{
    return add({FaultKind::SwitchDenied, std::move(trigger), 1.0});
}

FaultPlan &
FaultPlan::switchSettle(FaultTrigger trigger, double factor)
{
    return add({FaultKind::SwitchSettle, std::move(trigger), factor});
}

FaultPlan &
FaultPlan::oodSpike(FaultTrigger trigger, double factor)
{
    return add({FaultKind::OodSpike, std::move(trigger), factor});
}

namespace {

/** Highest flippable bit of the slice's cycle readout register. A
 *  26-bit register (67M cycles) covers every benchmark's range. */
constexpr std::int64_t readoutBits = 26;

void
applyFiring(JobFaults &f, const FaultModel &model, util::Rng &rng)
{
    switch (model.kind) {
      case FaultKind::SliceReadout:
        // Half the firings are a stuck-at-zero readout, half flip one
        // random bit of the predicted cycle count.
        if (rng.bernoulli(0.5)) {
            f.stuckReadout = true;
        } else {
            f.readoutFlipBit = static_cast<std::uint32_t>(
                rng.uniformInt(0, readoutBits - 1));
        }
        break;
      case FaultKind::SliceStall:
        f.sliceStallFactor *= model.magnitude;
        break;
      case FaultKind::ModelCorruption:
        // Latched by the caller; nothing per-firing to resolve.
        break;
      case FaultKind::SwitchDenied:
        f.switchDenied = true;
        break;
      case FaultKind::SwitchSettle:
        f.settleFactor *= model.magnitude;
        break;
      case FaultKind::OodSpike:
        f.oodScale *= model.magnitude;
        break;
    }
}

bool
fires(const FaultTrigger &trigger, std::size_t job, util::Rng &rng)
{
    switch (trigger.mode) {
      case FaultTrigger::Mode::Probabilistic:
        // Always draw, so the stream position is a function of the
        // job index alone (controller-independent determinism).
        return rng.bernoulli(trigger.probability);
      case FaultTrigger::Mode::Interval:
        return job >= trigger.phase &&
            (job - trigger.phase) % trigger.interval == 0;
      case FaultTrigger::Mode::Scripted:
        return std::find(trigger.jobs.begin(), trigger.jobs.end(),
                         job) != trigger.jobs.end();
    }
    return false;
}

} // namespace

FaultSchedule
FaultPlan::instantiate(std::size_t num_jobs) const
{
    FaultSchedule schedule;
    schedule.perJob.assign(num_jobs, JobFaults{});

    util::Rng base(rngSeed);
    for (std::size_t m = 0; m < faultModels.size(); ++m) {
        const FaultModel &model = faultModels[m];
        util::Rng rng = base.split(m);
        bool corrupted = false;  // ModelCorruption latch.
        for (std::size_t job = 0; job < num_jobs; ++job) {
            const bool fired = fires(model.trigger, job, rng);
            if (fired) {
                applyFiring(schedule.perJob[job], model, rng);
                schedule
                    .counts[static_cast<std::size_t>(model.kind)] += 1;
            }
            if (model.kind == FaultKind::ModelCorruption) {
                corrupted = corrupted || fired;
                if (corrupted)
                    schedule.perJob[job].modelScale *= model.magnitude;
            }
        }
    }
    return schedule;
}

} // namespace sim
} // namespace predvfs
