/**
 * @file
 * Content-addressed memoization of prepared jobs.
 *
 * A prepared record's value fields — full-design cycles and energy
 * units, slice cycles/energy, predicted cycles — are a pure function
 * of (design, predictor, job field vector): the interpreter is
 * deterministic and jobs carry no hidden state. The cache exploits
 * that by keying on a *stream key* (a content hash of the design plus
 * a fingerprint of the trained predictor, computed by the engine) and
 * the job's canonical field vector. Duplicate-heavy workloads (H.264
 * mode dispatch, fixed-size AES/SHA buffers) then simulate each unique
 * field vector once per process, and grid sweeps re-preparing the same
 * stream hit for every job.
 *
 * Fault schedules are deliberately outside the key: prepare() caches
 * only the clean simulation and re-applies FaultSchedule effects after
 * fan-out, so a per-job-index fault mutates the copies, never the
 * cached master (see SimulationEngine::prepare).
 *
 * Eviction is a strict LRU over a byte budget. For a serial probe
 * sequence the hit/miss/eviction history is a pure function of the
 * sequence and the capacity — the determinism the eviction tests pin
 * down. Under concurrent use (experiment-matrix sharding) the
 * interleaving of probes is schedule-dependent, so hit *rates* may
 * vary run to run, but never values: a hit returns exactly the bytes
 * an insert stored, and the full canonical key is compared on lookup,
 * so a 64-bit hash collision cannot alias two different jobs.
 */

#ifndef PREDVFS_SIM_JOB_CACHE_HH
#define PREDVFS_SIM_JOB_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rtl/design.hh"

namespace predvfs {
namespace sim {

/** The memoised payload: every value field prepare() computes. */
struct CachedJob
{
    std::uint64_t cycles = 0;
    double energyUnits = 0.0;
    std::uint64_t sliceCycles = 0;
    double sliceEnergyUnits = 0.0;
    double predictedCycles = 0.0;
};

/** Bounded, LRU-evicted map from (stream key, field vector) to the
 *  clean simulation results of one job. Thread-safe. */
class JobCache
{
  public:
    /** Default byte budget of the process-global cache. */
    static constexpr std::size_t defaultCapacityBytes = 64u << 20;

    /** @param capacity_bytes 0 disables storage (every probe misses). */
    explicit JobCache(std::size_t capacity_bytes = defaultCapacityBytes);

    /** Counters since construction (or the last clear()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
        std::size_t capacityBytes = 0;

        /** @return hits / (hits + misses), 0 when no probes. */
        double hitRate() const;
    };

    /**
     * Probe for @p job under @p stream_key; a hit copies the payload
     * into @p out and refreshes the entry's LRU position. On a miss,
     * non-null @p key_out / @p hash_out receive the canonical key and
     * its hash so the caller can dedup and insert without recomputing
     * them (they are untouched on a hit).
     */
    bool lookup(std::uint64_t stream_key, const rtl::JobInput &job,
                CachedJob &out,
                std::vector<std::int64_t> *key_out = nullptr,
                std::uint64_t *hash_out = nullptr);

    /**
     * Insert (or refresh) the clean simulation result of @p job.
     * Entries larger than the whole budget are not stored. Evicts
     * least-recently-used entries until the new entry fits.
     */
    void insert(std::uint64_t stream_key, const rtl::JobInput &job,
                const CachedJob &value);

    /** insert() with a precomputed canonical key and hash (as filled
     *  by a missing lookup()); avoids rebuilding and rehashing it. */
    void insert(std::vector<std::int64_t> key, std::uint64_t hash,
                const CachedJob &value);

    Stats stats() const;

    /** Drop every entry and reset the counters. */
    void clear();

    /** Outcome of loadSnapshotFile(): how much of the file survived. */
    struct SnapshotLoadStats
    {
        std::size_t loaded = 0;    //!< Entries inserted.
        std::size_t rejected = 0;  //!< Entries dropped (corrupt/filtered).
        bool tornTail = false;     //!< Footer missing or wrong — the
                                   //!< file was truncated mid-write.
    };

    /**
     * Write every entry to @p path, crash-safely: the snapshot is
     * serialised to @p path + ".tmp" and atomically renamed into
     * place, so a crash mid-write leaves either the old snapshot or
     * none — never a half-written file under the final name. Each
     * entry line carries its own FNV-1a checksum and a footer
     * checksums the whole body (persist.cc conventions). Entries are
     * written least-recently-used first so a later load restores the
     * recency order. @return false (with a warning) on I/O failure.
     */
    bool saveSnapshotFile(const std::string &path) const;

    /**
     * Load a snapshot written by saveSnapshotFile(). Corruption is
     * rejected entry-by-entry, never fatally: a line whose checksum,
     * shape, or key fails validation is skipped and counted in
     * @ref SnapshotLoadStats::rejected, and a missing or mismatching
     * footer flags tornTail while keeping every valid entry before
     * the tear. When @p accept_stream_keys is non-null, entries whose
     * stream key (design ⊕ predictor fingerprint) is not in the set
     * are rejected — a snapshot from different designs or retrained
     * predictors must not seed this process's cache.
     */
    SnapshotLoadStats loadSnapshotFile(
        const std::string &path,
        const std::unordered_set<std::uint64_t> *accept_stream_keys =
            nullptr);

    std::size_t capacityBytes() const { return capacity; }

    /**
     * The process-global cache shared by every SimulationEngine.
     * Capacity comes from PREDVFS_CACHE_BYTES (bytes; first read
     * wins), defaulting to defaultCapacityBytes.
     */
    static JobCache &global();

    /** False when PREDVFS_DISABLE_CACHE=1 was set at first query. */
    static bool enabledByEnv();

    /** @name Content hashing (shared by the engine's stream keys) */
    /// @{
    /**
     * 64-bit content hash over a byte range: a multiply-xorshift mix
     * consuming eight bytes per step (canonical keys run to hundreds
     * of kilobytes on image workloads, so a byte-at-a-time hash would
     * dominate warm probes). In-memory only — the value is never
     * persisted, so the function is free to change between builds.
     */
    static std::uint64_t hashBytes(const void *data, std::size_t n,
                                   std::uint64_t seed = fnvOffset);

    /** Content hash of a validated design (its serialised text). */
    static std::uint64_t hashDesign(const rtl::Design &design);

    /**
     * Canonical flattening of a job's field vectors: item count, then
     * per item its field count and fields. Two jobs flatten equal iff
     * every item's every field is equal — the cache's exact key.
     */
    static std::vector<std::int64_t>
    canonicalKey(std::uint64_t stream_key, const rtl::JobInput &job);

    /** hashBytes() of canonicalKey(), computed by streaming over the
     *  job without materialising the key vector — probes allocate
     *  nothing. */
    static std::uint64_t hashJob(std::uint64_t stream_key,
                                 const rtl::JobInput &job);

    /** @return true iff @p key == canonicalKey(stream_key, job),
     *  compared structurally without building the flattening. */
    static bool keyMatchesJob(const std::vector<std::int64_t> &key,
                              std::uint64_t stream_key,
                              const rtl::JobInput &job);
    /// @}

    static constexpr std::uint64_t fnvOffset = 1469598103934665603ull;

  private:
    struct Entry
    {
        std::vector<std::int64_t> key;  //!< Canonical key, exact.
        std::uint64_t hash = 0;
        CachedJob value;
        std::size_t bytes = 0;
    };

    using EntryList = std::list<Entry>;

    static std::size_t entryBytes(const Entry &entry);
    void evictToFit(std::size_t incoming_bytes);

    mutable std::mutex mu;
    std::size_t capacity;
    std::size_t usedBytes = 0;
    EntryList lru;  //!< Front = most recently used.
    std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>>
        index;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t insertCount = 0;
    std::uint64_t evictCount = 0;
};

} // namespace sim
} // namespace predvfs

#endif // PREDVFS_SIM_JOB_CACHE_HH
