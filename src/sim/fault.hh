/**
 * @file
 * Deterministic fault injection for the simulation pipeline.
 *
 * A FaultPlan is a list of fault models, each paired with a trigger
 * schedule (seeded-probabilistic, fixed-interval, or scripted job
 * indices). instantiate() resolves the plan into a FaultSchedule — a
 * per-job table of concrete fault effects that is a pure function of
 * (seed, ordered model list, job count), never of controller
 * behaviour. The same schedule can therefore be replayed against any
 * controller, stressing every scheme with bit-identical faults.
 *
 * Fault models cover the failure scenarios the predictive runtime is
 * blind to:
 *  - SliceReadout: the slice's feature readout is corrupted for one
 *    job (a stuck-at-zero readout, or a single bit flip in the
 *    predicted cycle count).
 *  - SliceStall: the slice takes far longer than its budget (latency
 *    multiplied), eating into the job's deadline.
 *  - ModelCorruption: the model coefficients are corrupted from the
 *    first firing onward — every later prediction is scaled, the
 *    systematic-drift failure mode.
 *  - SwitchDenied: the DVFS transition is rejected; the accelerator
 *    is stuck at its current level for this job.
 *  - SwitchSettle: the DVFS settle time is inflated by a factor for
 *    this job's switch (marginal voltage regulator).
 *  - OodSpike: the job itself is far larger than anything in the
 *    training distribution (actual cycles multiplied); the slice
 *    still reports the in-distribution estimate.
 */

#ifndef PREDVFS_SIM_FAULT_HH
#define PREDVFS_SIM_FAULT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.hh"

namespace predvfs {
namespace sim {

/** The injectable fault classes. */
enum class FaultKind
{
    SliceReadout,     //!< Corrupt the slice's predicted cycle count.
    SliceStall,       //!< Multiply the slice latency.
    ModelCorruption,  //!< Scale all predictions from first firing on.
    SwitchDenied,     //!< DVFS transition rejected for this job.
    SwitchSettle,     //!< DVFS settle time multiplied for this job.
    OodSpike,         //!< Job cycles multiplied (out-of-distribution).
};

/** Number of FaultKind values (for per-kind counters). */
constexpr std::size_t numFaultKinds = 6;

/** @return a short human-readable name for @p kind. */
const char *faultKindName(FaultKind kind);

/** When a fault model fires. */
struct FaultTrigger
{
    enum class Mode
    {
        Probabilistic,  //!< Independent Bernoulli draw per job.
        Interval,       //!< Every interval-th job, starting at phase.
        Scripted,       //!< Explicit job indices.
    };

    Mode mode = Mode::Probabilistic;
    double probability = 0.0;       //!< Probabilistic: per-job rate.
    std::size_t interval = 0;       //!< Interval: period in jobs.
    std::size_t phase = 0;          //!< Interval: first firing index.
    std::vector<std::size_t> jobs;  //!< Scripted: firing indices.

    static FaultTrigger probabilistic(double p);
    static FaultTrigger every(std::size_t interval, std::size_t phase = 0);
    static FaultTrigger scripted(std::vector<std::size_t> jobs);
};

/** One fault model: what breaks, when, and how hard. */
struct FaultModel
{
    FaultKind kind = FaultKind::SliceReadout;
    FaultTrigger trigger;

    /**
     * Kind-specific strength:
     *  - SliceStall:      slice latency multiplier (e.g. 20).
     *  - ModelCorruption: prediction scale from onset (e.g. 0.4).
     *  - SwitchSettle:    settle time multiplier (e.g. 10).
     *  - OodSpike:        job cycle multiplier (e.g. 3).
     *  - SliceReadout / SwitchDenied: unused.
     */
    double magnitude = 1.0;
};

/** Sentinel: no readout bit flip scheduled for this job. */
constexpr std::uint32_t noBitFlip = 0xffffffffu;

/** Concrete fault effects resolved for one job. */
struct JobFaults
{
    // Prepare-stage effects (mutate the prepared record).
    bool stuckReadout = false;        //!< Predicted cycles forced to 0.
    std::uint32_t readoutFlipBit = noBitFlip;  //!< Bit to flip, if any.
    double sliceStallFactor = 1.0;    //!< Multiplies sliceCycles.
    double modelScale = 1.0;          //!< Multiplies predictedCycles.
    double oodScale = 1.0;            //!< Multiplies cycles/energy.

    // Replay-stage effects (consumed by SimulationEngine::run).
    bool switchDenied = false;        //!< Level change rejected.
    double settleFactor = 1.0;        //!< Multiplies the switch time.

    /** @return true if any effect deviates from the fault-free value. */
    bool any() const;
};

/**
 * A plan resolved against a fixed job count: per-job effects plus
 * firing counts. Instantiated by FaultPlan::instantiate(); apply the
 * prepare-stage effects with applyPrepareFaults() and pass the
 * schedule to SimulationEngine::run() for the replay-stage effects.
 */
class FaultSchedule
{
  public:
    /** @return effects for @p job (must be < numJobs()). */
    const JobFaults &at(std::size_t job) const;

    std::size_t numJobs() const { return perJob.size(); }

    /** @return firings of one fault kind across the schedule. */
    std::size_t firings(FaultKind kind) const;

    /** @return total firings across all kinds. */
    std::size_t totalFirings() const;

    /** @return number of jobs with at least one effect. */
    std::size_t faultedJobs() const;

    /**
     * Mutate prepared records in place: readout corruption, slice
     * stalls, model corruption, and OOD spikes. @p jobs must have
     * been prepared fault-free and must not exceed numJobs().
     */
    void applyPrepareFaults(std::vector<core::PreparedJob> &jobs) const;

    /** One-line description, e.g. for bench output. */
    std::string summary() const;

  private:
    friend class FaultPlan;
    std::vector<JobFaults> perJob;
    std::array<std::size_t, numFaultKinds> counts{};
};

/** A seeded, ordered list of fault models. */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed = 0);

    /** Append a fault model; returns *this for chaining. */
    FaultPlan &add(FaultModel model);

    /** @name Convenience builders for the common models */
    /// @{
    FaultPlan &sliceReadout(FaultTrigger trigger);
    FaultPlan &sliceStall(FaultTrigger trigger, double factor = 20.0);
    FaultPlan &modelCorruption(FaultTrigger trigger, double scale = 0.4);
    FaultPlan &switchDenied(FaultTrigger trigger);
    FaultPlan &switchSettle(FaultTrigger trigger, double factor = 10.0);
    FaultPlan &oodSpike(FaultTrigger trigger, double factor = 3.0);
    /// @}

    /**
     * Resolve the plan over @p num_jobs jobs. Deterministic: the
     * result depends only on the seed, the order models were added,
     * and @p num_jobs.
     */
    FaultSchedule instantiate(std::size_t num_jobs) const;

    std::uint64_t seed() const { return rngSeed; }
    const std::vector<FaultModel> &models() const { return faultModels; }

  private:
    std::uint64_t rngSeed;
    std::vector<FaultModel> faultModels;
};

} // namespace sim
} // namespace predvfs

#endif // PREDVFS_SIM_FAULT_HH
