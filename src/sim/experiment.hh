/**
 * @file
 * Shared experiment driver: everything a bench binary needs to
 * reproduce one paper figure for one benchmark — accelerator,
 * workload, trained predictor, operating points, engine, prepared job
 * streams — built once and queried per scheme.
 */

#ifndef PREDVFS_SIM_EXPERIMENT_HH
#define PREDVFS_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hh"
#include "core/pid_controller.hh"
#include "sim/engine.hh"
#include "workload/suite.hh"

namespace predvfs {
namespace sim {

/** Implementation technology of the accelerator (paper 4.3 vs 4.4). */
enum class Platform { Asic, Fpga };

/** The DVFS schemes compared across the paper's figures. */
enum class Scheme
{
    Baseline,              //!< Constant nominal voltage/frequency.
    Pid,                   //!< Reactive control-theory controller.
    Table,                 //!< Worst-case-per-size-class lookup.
    Prediction,            //!< The paper's slice-based controller.
    PredictionNoOverhead,  //!< Figure 13: overheads removed.
    PredictionBoost,       //!< Figure 14: 1.08 V boost allowed.
    Oracle,                //!< Figure 13: perfect knowledge.
    GuardedPrediction,     //!< Prediction + watchdog degradation.
};

/** @return the scheme label used in the paper's figures. */
const char *schemeName(Scheme scheme);

/**
 * Adjust an accelerator's energy calibration for the implementation
 * platform (FPGA fabric burns more switched capacitance and leakage
 * than the 65 nm ASIC). Shared by Experiment and the serving layer's
 * stream builder so both construct identical engines.
 */
power::EnergyParams platformEnergyParams(power::EnergyParams params,
                                         Platform platform);

/** Configuration of one experiment instance. */
struct ExperimentOptions
{
    Platform platform = Platform::Asic;
    double deadlineSeconds = 1.0 / 60.0;
    double switchTimeSeconds = 100e-6;
    std::uint64_t seed = workload::defaultSeed;
    rtl::SliceOptions sliceOptions = {};
    double predictionMargin = 0.05;  //!< Paper: 5% for prediction.
    double pidMargin = 0.10;         //!< Paper: 10% for PID.
    core::FlowConfig flowConfig = {};//!< sliceOptions is overwritten.

    /**
     * Workers for preparing the train/test streams (1 = serial).
     * Prepared records are bit-identical at any value; this only
     * changes wall-clock time.
     */
    unsigned prepareThreads = 1;

    /**
     * Share the prepared stream (workload, trained predictor, job
     * records) across Experiment instances whose cells differ only in
     * deadline, switch time, margins, platform, or controller — the
     * shape of every grid sweep. Records are a pure function of
     * (design, workload seed, flow config), so sharing is
     * bit-identical to rebuilding; disable to force a private stream
     * (e.g. when timing cold construction). A custom featureFilter
     * disables sharing automatically (a std::function has no content
     * identity to key on).
     */
    bool shareStreams = true;
};

/**
 * The cell-invariant parts of one experiment: the workload, the
 * trained predictor, and the prepared job streams. Immutable once
 * built; shared across every Experiment whose options agree on the
 * stream key (benchmark, seed, slice options, flow tunables).
 */
struct PreparedStream
{
    workload::BenchmarkWorkload work;
    core::FlowResult flow;
    std::vector<core::PreparedJob> trainJobs;
    std::vector<core::PreparedJob> testJobs;
    PrepareStats trainPrepare;  //!< How the train stream was answered.
    PrepareStats testPrepare;   //!< How the test stream was answered.
};

/** Drop every entry of the process-global prepared-stream registry
 *  (benchmarks use this to time cold vs warm construction). */
void clearSharedStreams();

/**
 * One benchmark fully set up for evaluation. Construction runs the
 * offline flow (training simulation + model fit + slicing) and
 * prepares both job streams; runScheme() replays controllers.
 */
class Experiment
{
  public:
    Experiment(const std::string &benchmark,
               ExperimentOptions options = {});

    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    /** @name Component access */
    /// @{
    const accel::Accelerator &accelerator() const { return *accelPtr; }
    const workload::BenchmarkWorkload &workload() const
    {
        return stream->work;
    }
    const core::FlowReport &flowReport() const
    {
        return stream->flow.report;
    }
    const core::SlicePredictor &predictor() const
    {
        return *stream->flow.predictor;
    }
    const power::VfModel &vfModel() const { return *vf; }
    const power::OperatingPointTable &table() const { return *opTable; }
    const SimulationEngine &engine() const { return *simEngine; }
    const std::vector<core::PreparedJob> &testPrepared() const
    {
        return stream->testJobs;
    }
    const std::vector<core::PreparedJob> &trainPrepared() const
    {
        return stream->trainJobs;
    }
    /** Cache/simulation counters of this stream's preparation (zeros
     *  when another Experiment built the shared stream first). */
    const PrepareStats &testPrepareStats() const
    {
        return stream->testPrepare;
    }
    const ExperimentOptions &options() const { return opts; }
    /// @}

    /**
     * Run one scheme over the test stream. Results are cached; pass a
     * trace pointer to force a (re-)run with tracing.
     */
    RunMetrics runScheme(Scheme scheme,
                         std::vector<JobTrace> *trace = nullptr);

    /** Scheme energy / baseline energy (both on the test stream). */
    double normalizedEnergy(Scheme scheme);

    /** @name Predictor overhead summary (Figures 12/17) */
    /// @{
    /** Slice area (incl. instrumentation) over accelerator area. */
    double sliceAreaFraction() const;

    /** FPGA resource fraction: like area, discounted for the share of
     *  the datapath that maps to DSP/BRAM hard blocks. */
    double sliceResourceFraction() const;

    /** Mean slice runtime over the job deadline. */
    double meanSliceTimeFraction() const;

    /** Mean slice energy over mean job energy (both at nominal). */
    double meanSliceEnergyFraction() const;
    /// @}

    /** Tuned PID configuration (lazily computed from training data). */
    const core::PidConfig &pidConfig();

  private:
    std::unique_ptr<core::DvfsController> makeController(Scheme scheme);

    ExperimentOptions opts;
    std::shared_ptr<const accel::Accelerator> accelPtr;
    std::shared_ptr<const PreparedStream> stream;
    std::unique_ptr<power::VfModel> vf;
    std::unique_ptr<power::OperatingPointTable> opTable;
    std::unique_ptr<SimulationEngine> simEngine;
    std::map<Scheme, RunMetrics> cache;
    std::optional<core::PidConfig> tunedPid;
};

/** One (benchmark, scheme) result of an experiment matrix. */
struct MatrixCell
{
    std::string benchmark;
    Scheme scheme = Scheme::Baseline;
    RunMetrics metrics;
    double normalizedEnergy = 0.0;  //!< Against the same benchmark's
                                    //!< baseline scheme.
};

/**
 * Evaluate every scheme on every benchmark — the shape of the paper's
 * summary figures. Cells are ordered benchmark-major, matching the
 * input vectors. With a pool, benchmarks are sharded over its workers
 * (each one builds its own Experiment); every cell is computed from
 * that benchmark's data alone, so results are identical to a serial
 * sweep at any worker count.
 */
std::vector<MatrixCell>
runExperimentMatrix(const std::vector<std::string> &benchmarks,
                    const std::vector<Scheme> &schemes,
                    const ExperimentOptions &options = {},
                    util::ThreadPool *pool = nullptr);

} // namespace sim
} // namespace predvfs

#endif // PREDVFS_SIM_EXPERIMENT_HH
