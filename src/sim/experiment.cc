#include "sim/experiment.hh"

#include <future>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "accel/registry.hh"
#include "sim/job_cache.hh"
#include "core/guarded_controller.hh"
#include "core/oracle_controller.hh"
#include "core/predictive_controller.hh"
#include "core/table_controller.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace predvfs {
namespace sim {

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Baseline: return "baseline";
      case Scheme::Pid: return "pid";
      case Scheme::Table: return "table";
      case Scheme::Prediction: return "prediction";
      case Scheme::PredictionNoOverhead: return "prediction w/o overhead";
      case Scheme::PredictionBoost: return "prediction w/ boost";
      case Scheme::Oracle: return "oracle";
      case Scheme::GuardedPrediction: return "guarded prediction";
    }
    return "?";
}

namespace {

/** Fraction of each design's area implemented in FPGA hard blocks
 *  (DSP/BRAM); the rest maps to LUTs. Datapath-heavy designs like
 *  stencil have a tiny LUT footprint, which inflates the *relative*
 *  resource overhead of their (LUT-only) slice — paper Figure 17. */
double
fpgaLutShare(const std::string &name)
{
    if (name == "h264") return 0.72;
    if (name == "cjpeg") return 0.78;
    if (name == "djpeg") return 0.74;
    if (name == "md") return 0.45;
    if (name == "stencil") return 0.24;
    if (name == "aes") return 0.80;
    if (name == "sha") return 0.62;
    return 0.7;
}

/**
 * Registry of prepared streams, keyed by every option that can change
 * a stream's content. A shared_future per key lets concurrent matrix
 * workers build *different* streams in parallel while same-key
 * requesters wait for the first builder instead of duplicating the
 * flow training and the simulation.
 */
std::mutex streamMu;
std::map<std::string,
         std::shared_future<std::shared_ptr<const PreparedStream>>>
    streamRegistry;

/**
 * Everything the prepared records and the trained predictor depend
 * on. Platform, deadline, switch time, and margins are deliberately
 * absent: they configure replay, not preparation.
 */
std::string
streamKeyOf(const std::string &benchmark, const ExperimentOptions &opts)
{
    std::ostringstream key;
    key << std::setprecision(17);
    const core::FlowConfig &fc = opts.flowConfig;
    key << benchmark << '|' << opts.seed << '|'
        << (opts.sliceOptions.mode == rtl::SliceOptions::Mode::Hls
                ? "hls" : "rtl")
        << '|' << opts.sliceOptions.hlsSpeedup << '|' << fc.alpha << '|'
        << fc.accuracyTolerance << '|' << fc.absoluteLossFloor << '|'
        << fc.validationFraction << '|' << fc.coefficientThreshold;
    for (const double gamma : fc.gammaSweep)
        key << ',' << gamma;
    return key.str();
}

} // namespace

power::EnergyParams
platformEnergyParams(power::EnergyParams params, Platform platform)
{
    if (platform == Platform::Fpga) {
        // FPGA fabric: higher switched capacitance per op and much
        // higher static power than a 65 nm ASIC.
        params.joulesPerUnit *= 3.0;
        params.leakageWattsNominal *= 6.0;
    }
    return params;
}

void
clearSharedStreams()
{
    std::lock_guard<std::mutex> lock(streamMu);
    streamRegistry.clear();
}

Experiment::Experiment(const std::string &benchmark,
                       ExperimentOptions options)
    : opts(std::move(options))
{
    accelPtr = accel::makeAccelerator(benchmark);

    const double f0 = accelPtr->nominalFrequencyHz();
    if (opts.platform == Platform::Asic) {
        vf = std::make_unique<power::VfModel>(
            power::VfModel::asic65nm(f0));
        opTable = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::asic(*vf, /*with_boost=*/true));
    } else {
        vf = std::make_unique<power::VfModel>(
            power::VfModel::fpga28nm(f0));
        opTable = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::fpga(*vf, /*with_boost=*/true));
    }

    EngineConfig engine_config;
    engine_config.deadlineSeconds = opts.deadlineSeconds;
    engine_config.switchTimeSeconds = opts.switchTimeSeconds;

    // The engine's energy model follows the platform.
    simEngine = std::make_unique<SimulationEngine>(
        *accelPtr, *opTable, engine_config,
        platformEnergyParams(accelPtr->energyParams(), opts.platform));

    // Offline flow + stream preparation, shared across cells. The
    // records are independent of the engine config, so whichever
    // cell's engine runs prepare() first produces the stream every
    // later cell replays.
    const auto build = [&]() -> std::shared_ptr<const PreparedStream> {
        auto s = std::make_shared<PreparedStream>();
        s->work = workload::makeWorkload(*accelPtr, opts.seed);
        core::FlowConfig flow_config = opts.flowConfig;
        flow_config.sliceOptions = opts.sliceOptions;
        s->flow = core::buildPredictor(accelPtr->design(),
                                       s->work.train, flow_config);
        if (opts.prepareThreads > 1) {
            util::ThreadPool pool(opts.prepareThreads);
            s->trainJobs = simEngine->prepare(
                s->work.train, s->flow.predictor.get(), nullptr, &pool,
                &s->trainPrepare);
            s->testJobs = simEngine->prepare(
                s->work.test, s->flow.predictor.get(), nullptr, &pool,
                &s->testPrepare);
        } else {
            s->trainJobs = simEngine->prepare(
                s->work.train, s->flow.predictor.get(), nullptr,
                nullptr, &s->trainPrepare);
            s->testJobs = simEngine->prepare(
                s->work.test, s->flow.predictor.get(), nullptr,
                nullptr, &s->testPrepare);
        }
        return s;
    };

    // A custom featureFilter has no content identity a key could
    // capture; such experiments always build privately.
    const bool share = opts.shareStreams && !opts.flowConfig.featureFilter
        && JobCache::enabledByEnv();
    if (!share) {
        stream = build();
        return;
    }

    const std::string key = streamKeyOf(benchmark, opts);
    std::promise<std::shared_ptr<const PreparedStream>> promise;
    std::shared_future<std::shared_ptr<const PreparedStream>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(streamMu);
        const auto it = streamRegistry.find(key);
        if (it != streamRegistry.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            streamRegistry.emplace(key, future);
            builder = true;
        }
    }
    if (builder) {
        try {
            promise.set_value(build());
        } catch (...) {
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    stream = future.get();
}

const core::PidConfig &
Experiment::pidConfig()
{
    if (!tunedPid) {
        std::vector<double> nominal;
        nominal.reserve(stream->trainJobs.size());
        for (const auto &job : stream->trainJobs)
            nominal.push_back(simEngine->nominalSeconds(job));
        tunedPid =
            core::PidController::tune(nominal, opts.pidMargin);
    }
    return *tunedPid;
}

std::unique_ptr<core::DvfsController>
Experiment::makeController(Scheme scheme)
{
    const double f0 = accelPtr->nominalFrequencyHz();

    core::DvfsModelConfig dvfs;
    dvfs.deadlineSeconds = opts.deadlineSeconds;
    dvfs.switchTimeSeconds = opts.switchTimeSeconds;
    dvfs.marginFraction = opts.predictionMargin;

    switch (scheme) {
      case Scheme::Baseline:
        return std::make_unique<core::ConstantController>(
            opTable->nominalIndex());
      case Scheme::Pid:
        return std::make_unique<core::PidController>(
            *opTable, f0, dvfs, pidConfig());
      case Scheme::Table: {
        std::vector<std::pair<std::size_t, double>> profile;
        profile.reserve(stream->trainJobs.size());
        for (const auto &job : stream->trainJobs)
            profile.emplace_back(job.input->items.size(),
                                 simEngine->nominalSeconds(job));
        core::DvfsModelConfig table_dvfs = dvfs;
        table_dvfs.marginFraction = 0.0;  // Worst case is the margin.
        return std::make_unique<core::TableController>(
            *opTable, f0, table_dvfs, profile);
      }
      case Scheme::Prediction:
        return std::make_unique<core::PredictiveController>(
            *opTable, f0, dvfs);
      case Scheme::PredictionNoOverhead: {
        core::DvfsModelConfig no_ovh = dvfs;
        no_ovh.ignoreOverheads = true;
        return std::make_unique<core::PredictiveController>(
            *opTable, f0, no_ovh);
      }
      case Scheme::PredictionBoost: {
        core::DvfsModelConfig boost = dvfs;
        boost.allowBoost = true;
        return std::make_unique<core::PredictiveController>(
            *opTable, f0, boost);
      }
      case Scheme::Oracle:
        return std::make_unique<core::OracleController>(
            *opTable, f0, dvfs);
      case Scheme::GuardedPrediction:
        return std::make_unique<core::GuardedPredictiveController>(
            *opTable, f0, dvfs, pidConfig());
    }
    util::panic("unknown scheme");
    return nullptr;
}

RunMetrics
Experiment::runScheme(Scheme scheme, std::vector<JobTrace> *trace)
{
    if (!trace) {
        const auto it = cache.find(scheme);
        if (it != cache.end())
            return it->second;
    }
    auto controller = makeController(scheme);
    const RunMetrics metrics =
        simEngine->run(*controller, stream->testJobs, trace);
    cache[scheme] = metrics;
    return metrics;
}

double
Experiment::normalizedEnergy(Scheme scheme)
{
    const double base =
        runScheme(Scheme::Baseline).totalEnergyJoules();
    util::panicIf(base <= 0.0, "baseline energy is zero");
    return runScheme(scheme).totalEnergyJoules() / base;
}

double
Experiment::sliceAreaFraction() const
{
    const auto &slice = stream->flow.predictor->slice();
    return slice.areaUnits() / accelPtr->design().areaUnits();
}

double
Experiment::sliceResourceFraction() const
{
    const auto &slice = stream->flow.predictor->slice();
    const double lut_share = fpgaLutShare(accelPtr->name());
    // The slice is control logic and maps entirely to LUTs; relate it
    // to the accelerator's LUT footprint (hard blocks are excluded
    // the way LUT-utilisation reports exclude DSPs).
    return slice.areaUnits() /
        (accelPtr->design().areaUnits() * lut_share);
}

double
Experiment::meanSliceTimeFraction() const
{
    if (stream->testJobs.empty())
        return 0.0;
    const double f0 = accelPtr->nominalFrequencyHz();
    double total = 0.0;
    for (const auto &job : stream->testJobs)
        total += static_cast<double>(job.sliceCycles) / f0;
    return (total / static_cast<double>(stream->testJobs.size())) /
        opts.deadlineSeconds;
}

double
Experiment::meanSliceEnergyFraction() const
{
    if (stream->testJobs.empty())
        return 0.0;
    double slice_units = 0.0;
    double job_units = 0.0;
    for (const auto &job : stream->testJobs) {
        slice_units += job.sliceEnergyUnits;
        job_units += job.energyUnits;
    }
    return job_units > 0.0 ? slice_units / job_units : 0.0;
}

std::vector<MatrixCell>
runExperimentMatrix(const std::vector<std::string> &benchmarks,
                    const std::vector<Scheme> &schemes,
                    const ExperimentOptions &options,
                    util::ThreadPool *pool)
{
    std::vector<MatrixCell> cells(benchmarks.size() * schemes.size());

    // One unit of work = one benchmark: the Experiment (flow training,
    // stream preparation) dominates, and its scheme runs share caches.
    // Each worker writes only its benchmark's row, keeping the output
    // independent of sharding.
    const auto runRow = [&](std::size_t b) {
        Experiment exp(benchmarks[b], options);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            MatrixCell &cell = cells[b * schemes.size() + s];
            cell.benchmark = benchmarks[b];
            cell.scheme = schemes[s];
            cell.metrics = exp.runScheme(schemes[s]);
            cell.normalizedEnergy = exp.normalizedEnergy(schemes[s]);
        }
    };

    if (pool && pool->workers() > 1) {
        pool->run(benchmarks.size(),
                  [&](unsigned, std::size_t b) { runRow(b); });
    } else {
        for (std::size_t b = 0; b < benchmarks.size(); ++b)
            runRow(b);
    }
    return cells;
}

} // namespace sim
} // namespace predvfs
