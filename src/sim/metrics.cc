#include "sim/metrics.hh"

namespace predvfs {
namespace sim {

double
RunMetrics::totalEnergyJoules() const
{
    return execEnergyJoules + overheadEnergyJoules;
}

double
RunMetrics::missRate() const
{
    return jobs == 0 ? 0.0
                     : static_cast<double>(misses) /
            static_cast<double>(jobs);
}

std::vector<double>
traceActualSeconds(const std::vector<JobTrace> &trace)
{
    std::vector<double> out;
    out.reserve(trace.size());
    for (const auto &t : trace)
        out.push_back(t.actualNominalSeconds);
    return out;
}

std::vector<double>
tracePredictedSeconds(const std::vector<JobTrace> &trace)
{
    std::vector<double> out;
    out.reserve(trace.size());
    for (const auto &t : trace)
        out.push_back(t.predictedNominalSeconds);
    return out;
}

} // namespace sim
} // namespace predvfs
