#include "sim/engine.hh"

#include <algorithm>

#include "rtl/instrument.hh"
#include "rtl/interpreter.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace predvfs {
namespace sim {

using util::fatalIf;
using util::panicIf;

SimulationEngine::SimulationEngine(
    const accel::Accelerator &accelerator,
    const power::OperatingPointTable &table, EngineConfig config,
    std::optional<power::EnergyParams> energy_params)
    : accel(accelerator),
      opTable(table),
      engineConfig(config),
      energyModel(energy_params ? *energy_params
                                : accelerator.energyParams()),
      fullInterp(accelerator.design())
{
    // Config mistakes here would otherwise surface as NaN-shaped
    // metrics several layers away; reject them up front.
    fatalIf(engineConfig.deadlineSeconds <= 0.0,
            "SimulationEngine: deadlineSeconds must be positive, got ",
            engineConfig.deadlineSeconds);
    fatalIf(engineConfig.switchTimeSeconds < 0.0,
            "SimulationEngine: switchTimeSeconds must be "
            "non-negative, got ", engineConfig.switchTimeSeconds);
}

std::vector<core::PreparedJob>
SimulationEngine::prepare(const std::vector<rtl::JobInput> &jobs,
                          const core::SlicePredictor *predictor,
                          const FaultSchedule *faults,
                          util::ThreadPool *pool) const
{
    std::vector<core::PreparedJob> prepared(jobs.size());

    // Record i depends only on job i, so any sharding of the index
    // range produces the same vector; the instrumenter is the one
    // stateful piece, hence one per worker.
    const auto fill = [&](const rtl::JobInput &job,
                          core::PreparedJob &record,
                          rtl::Instrumenter *instr) {
        record.input = &job;
        const rtl::JobResult result = fullInterp.run(job);
        record.cycles = result.cycles;
        record.energyUnits = result.energyUnits;
        if (predictor) {
            const core::SliceRun slice = predictor->runWith(job, *instr);
            record.sliceCycles = slice.sliceCycles;
            record.sliceEnergyUnits = slice.sliceEnergyUnits;
            record.predictedCycles = slice.predictedCycles;
        }
    };

    if (pool && pool->workers() > 1 && jobs.size() > 1) {
        std::vector<rtl::Instrumenter> scratch;
        if (predictor) {
            scratch.reserve(pool->workerSlots());
            for (unsigned w = 0; w < pool->workerSlots(); ++w)
                scratch.push_back(predictor->makeInstrumenter());
        }
        pool->run(jobs.size(), [&](unsigned w, std::size_t i) {
            fill(jobs[i], prepared[i],
                 predictor ? &scratch[w] : nullptr);
        });
    } else {
        std::unique_ptr<rtl::Instrumenter> instr;
        if (predictor) {
            instr = std::make_unique<rtl::Instrumenter>(
                predictor->makeInstrumenter());
        }
        for (std::size_t i = 0; i < jobs.size(); ++i)
            fill(jobs[i], prepared[i], instr.get());
    }

    if (faults)
        faults->applyPrepareFaults(prepared);
    return prepared;
}

double
SimulationEngine::nominalSeconds(const core::PreparedJob &job) const
{
    return static_cast<double>(job.cycles) / accel.nominalFrequencyHz();
}

RunMetrics
SimulationEngine::run(core::DvfsController &controller,
                      const std::vector<core::PreparedJob> &jobs,
                      std::vector<JobTrace> *trace,
                      const FaultSchedule *faults) const
{
    controller.reset();
    if (trace) {
        trace->clear();
        trace->reserve(jobs.size());
    }

    RunMetrics metrics;
    const double v_nominal = energyModel.params().vNominal;
    std::size_t current_level = opTable.nominalIndex();

    // Jobs are periodic (one per deadline interval, Figure 1): when a
    // job overruns its deadline, the accelerator is still busy when
    // the next job is released, so the successor starts late and has
    // less than a full period of budget.
    double carry_seconds = 0.0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &job = jobs[i];
        const double budget =
            engineConfig.deadlineSeconds - carry_seconds;
        const core::Decision decision =
            controller.decide(job, current_level,
                              std::max(budget, 1e-9));
        panicIf(decision.level >= opTable.size(),
                "controller '", controller.name(),
                "' chose invalid level ", decision.level);

        // DVFS switch faults: a denied transition leaves the
        // accelerator at its current level (the controller learns of
        // it through current_level on the next decide()); a settle
        // fault inflates the switch time.
        const JobFaults *fault = faults ? &faults->at(i) : nullptr;
        std::size_t effective_level = decision.level;
        if (fault && fault->switchDenied &&
            effective_level != current_level)
            effective_level = current_level;
        const auto &op = opTable[effective_level];

        const bool switched = effective_level != current_level;
        double switch_seconds = (switched && decision.chargeSwitch)
            ? engineConfig.switchTimeSeconds
            : 0.0;
        if (fault)
            switch_seconds *= fault->settleFactor;
        current_level = effective_level;

        const double exec_seconds =
            static_cast<double>(job.cycles) / op.frequencyHz;
        const double total_seconds = decision.overheadSeconds +
            switch_seconds + exec_seconds;

        const double exec_energy =
            energyModel.jobEnergy(job.energyUnits, job.cycles, op);
        // The predictor slice runs at nominal voltage/frequency (it is
        // a separate small block, Figure 5); charge its dynamic energy
        // plus leakage for its runtime.
        const double overhead_energy =
            energyModel.dynamicEnergy(decision.overheadEnergyUnits,
                                      v_nominal) +
            (decision.overheadEnergyUnits > 0.0
                 ? energyModel.leakagePower(v_nominal) *
                       decision.overheadSeconds
                 : 0.0) +
            decision.overheadEnergyJoules;

        const double finish_seconds = carry_seconds + total_seconds;
        const bool missed =
            finish_seconds > engineConfig.deadlineSeconds;
        carry_seconds = std::max(
            0.0, finish_seconds - engineConfig.deadlineSeconds);

        metrics.jobs += 1;
        metrics.misses += missed ? 1 : 0;
        metrics.switches += switched ? 1 : 0;
        metrics.execEnergyJoules += exec_energy;
        metrics.overheadEnergyJoules += overhead_energy;
        metrics.execSeconds += exec_seconds;
        metrics.overheadSeconds +=
            decision.overheadSeconds + switch_seconds;

        const double nominal_seconds = nominalSeconds(job);
        controller.observe(job, nominal_seconds);

        if (trace) {
            JobTrace t;
            t.level = effective_level;
            t.actualNominalSeconds = nominal_seconds;
            t.predictedNominalSeconds =
                decision.predictedNominalSeconds;
            t.execSeconds = exec_seconds;
            t.totalSeconds = total_seconds;
            t.energyJoules = exec_energy + overhead_energy;
            t.missed = missed;
            trace->push_back(t);
        }
    }
    return metrics;
}

} // namespace sim
} // namespace predvfs
