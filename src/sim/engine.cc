#include "sim/engine.hh"

#include <algorithm>
#include <unordered_map>

#include "rtl/compile.hh"
#include "rtl/instrument.hh"
#include "rtl/interpreter.hh"
#include "sim/job_cache.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace predvfs {
namespace sim {

using util::fatalIf;
using util::panicIf;

SimulationEngine::SimulationEngine(
    const accel::Accelerator &accelerator,
    const power::OperatingPointTable &table, EngineConfig config,
    std::optional<power::EnergyParams> energy_params)
    : accel(accelerator),
      opTable(table),
      engineConfig(config),
      energyModel(energy_params ? *energy_params
                                : accelerator.energyParams()),
      fullInterp(accelerator.design()),
      designHash(JobCache::hashDesign(accelerator.design()))
{
    // Config mistakes here would otherwise surface as NaN-shaped
    // metrics several layers away; reject them up front.
    fatalIf(engineConfig.deadlineSeconds <= 0.0,
            "SimulationEngine: deadlineSeconds must be positive, got ",
            engineConfig.deadlineSeconds);
    fatalIf(engineConfig.switchTimeSeconds < 0.0,
            "SimulationEngine: switchTimeSeconds must be "
            "non-negative, got ", engineConfig.switchTimeSeconds);
}

std::uint64_t
SimulationEngine::streamKey(const core::SlicePredictor *predictor) const
{
    std::uint64_t h = designHash;
    if (predictor) {
        // The predictor memoises its content fingerprint (slice design
        // text, coefficients, intercept) at construction; re-deriving
        // it here would serialise the slice design on every prepare().
        const std::uint64_t fp = predictor->fingerprint();
        h = JobCache::hashBytes(&fp, sizeof(fp), h);
    } else {
        h = JobCache::hashBytes("no-slice", 8, h);
    }
    return h;
}

std::vector<core::PreparedJob>
SimulationEngine::prepare(const std::vector<rtl::JobInput> &jobs,
                          const core::SlicePredictor *predictor,
                          const FaultSchedule *faults,
                          util::ThreadPool *pool,
                          PrepareStats *stats) const
{
    std::vector<core::PreparedJob> prepared(jobs.size());
    if (stats)
        *stats = PrepareStats{};

    // One-time self-speculation: profile a slice of the first stream
    // this engine prepares and retune the batch kernel's speculative
    // lockstep routes to it. Bit-identical either way; the sample cap
    // bounds the profiling pass on huge streams.
    if (!jobs.empty()) {
        std::call_once(specOnce, [&] {
            constexpr std::size_t kSpecSample = 32;
            const std::size_t n =
                std::min(jobs.size(), kSpecSample);
            const std::vector<rtl::JobInput> sample(jobs.begin(),
                                                    jobs.begin() + n);
            fullInterp.speculate(sample);
        });
    }

    // Record i depends only on job i, so any sharding of the index
    // range produces the same vector; the instrumenter is the one
    // stateful piece, hence one per worker.
    const auto fill = [&](const rtl::JobInput &job,
                          core::PreparedJob &record,
                          rtl::Instrumenter *instr) {
        record.input = &job;
        const rtl::JobResult result = fullInterp.run(job);
        record.cycles = result.cycles;
        record.energyUnits = result.energyUnits;
        if (predictor) {
            const core::SliceRun slice = predictor->runWith(job, *instr);
            record.sliceCycles = slice.sliceCycles;
            record.sliceEnergyUnits = slice.sliceEnergyUnits;
            record.predictedCycles = slice.predictedCycles;
        }
    };

    if (!JobCache::enabledByEnv()) {
        // The unmemoised reference path: simulate every job.
        if (pool && pool->workers() > 1 && jobs.size() > 1) {
            std::vector<rtl::Instrumenter> scratch;
            if (predictor) {
                scratch.reserve(pool->workerSlots());
                for (unsigned w = 0; w < pool->workerSlots(); ++w)
                    scratch.push_back(predictor->makeInstrumenter());
            }
            pool->run(jobs.size(), [&](unsigned w, std::size_t i) {
                fill(jobs[i], prepared[i],
                     predictor ? &scratch[w] : nullptr);
            });
        } else {
            std::unique_ptr<rtl::Instrumenter> instr;
            if (predictor) {
                instr = std::make_unique<rtl::Instrumenter>(
                    predictor->makeInstrumenter());
            }
            for (std::size_t i = 0; i < jobs.size(); ++i)
                fill(jobs[i], prepared[i], instr.get());
        }

        if (faults)
            faults->applyPrepareFaults(prepared);
        if (stats) {
            stats->jobs = jobs.size();
            stats->simulated = jobs.size();
        }
        return prepared;
    }

    // Memoised path. Phase 1 (serial): probe the global cache once
    // per job and deduplicate the misses within this batch, keeping
    // first-occurrence order. Serial probing makes the cache's LRU
    // history a pure function of the job sequence — the worker count
    // only shards phase 2, which touches no shared state.
    JobCache &cache = JobCache::global();
    const std::uint64_t key = streamKey(predictor);

    std::vector<std::size_t> uniq;          //!< Indices to simulate.
    std::vector<std::vector<std::int64_t>> uniqKeys;
    std::vector<std::uint64_t> uniqHashes;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> byHash;
    // copyFrom[i] == i: simulate; == j < i: duplicate of job j;
    // == SIZE_MAX: already filled from the cache.
    std::vector<std::size_t> copyFrom(jobs.size());

    // One content-key buffer for the whole probe loop: lookup()
    // rewrites it in place, and only unique misses steal its storage.
    // The fresh-vector-per-job version showed up as allocator churn on
    // item-heavy streams (the h264 serial-prepare regression).
    std::vector<std::int64_t> ck;
    CachedJob hit;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        prepared[i].input = &jobs[i];
        ck.clear();
        std::uint64_t h = 0;
        if (cache.lookup(key, jobs[i], hit, &ck, &h)) {
            prepared[i].cycles = hit.cycles;
            prepared[i].energyUnits = hit.energyUnits;
            prepared[i].sliceCycles = hit.sliceCycles;
            prepared[i].sliceEnergyUnits = hit.sliceEnergyUnits;
            prepared[i].predictedCycles = hit.predictedCycles;
            copyFrom[i] = static_cast<std::size_t>(-1);
            continue;
        }
        std::vector<std::size_t> &slot = byHash[h];
        std::size_t rep = static_cast<std::size_t>(-1);
        for (const std::size_t u : slot) {
            if (uniqKeys[u] == ck) {
                rep = uniq[u];
                break;
            }
        }
        if (rep != static_cast<std::size_t>(-1)) {
            copyFrom[i] = rep;
            continue;
        }
        copyFrom[i] = i;
        slot.push_back(uniq.size());
        uniq.push_back(i);
        uniqKeys.push_back(std::move(ck));
        uniqHashes.push_back(h);
    }

    // Phase 2: simulate only the unique misses. Sharded over the pool
    // when available; the serial path pushes the full-design
    // simulation through the lockstep batch kernel (bit-identical to
    // per-job run() by construction).
    if (pool && pool->workers() > 1 && uniq.size() > 1) {
        std::vector<rtl::Instrumenter> scratch;
        if (predictor) {
            scratch.reserve(pool->workerSlots());
            for (unsigned w = 0; w < pool->workerSlots(); ++w)
                scratch.push_back(predictor->makeInstrumenter());
        }
        pool->run(uniq.size(), [&](unsigned w, std::size_t k) {
            fill(jobs[uniq[k]], prepared[uniq[k]],
                 predictor ? &scratch[w] : nullptr);
        });
    } else if (!uniq.empty()) {
        std::vector<const rtl::JobInput *> batch;
        batch.reserve(uniq.size());
        for (const std::size_t i : uniq)
            batch.push_back(&jobs[i]);
        const std::vector<rtl::JobResult> results =
            fullInterp.compiled()->runBatch(batch);

        std::unique_ptr<rtl::Instrumenter> instr;
        if (predictor) {
            instr = std::make_unique<rtl::Instrumenter>(
                predictor->makeInstrumenter());
        }
        for (std::size_t k = 0; k < uniq.size(); ++k) {
            core::PreparedJob &record = prepared[uniq[k]];
            record.cycles = results[k].cycles;
            record.energyUnits = results[k].energyUnits;
            if (predictor) {
                const core::SliceRun slice =
                    predictor->runWith(jobs[uniq[k]], *instr);
                record.sliceCycles = slice.sliceCycles;
                record.sliceEnergyUnits = slice.sliceEnergyUnits;
                record.predictedCycles = slice.predictedCycles;
            }
        }
    }

    // Phase 3 (serial, first-occurrence order): publish the clean
    // results, then fan out to batch-level duplicates.
    for (std::size_t k = 0; k < uniq.size(); ++k) {
        const core::PreparedJob &record = prepared[uniq[k]];
        CachedJob value;
        value.cycles = record.cycles;
        value.energyUnits = record.energyUnits;
        value.sliceCycles = record.sliceCycles;
        value.sliceEnergyUnits = record.sliceEnergyUnits;
        value.predictedCycles = record.predictedCycles;
        cache.insert(std::move(uniqKeys[k]), uniqHashes[k], value);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::size_t src = copyFrom[i];
        if (src == static_cast<std::size_t>(-1) || src == i)
            continue;
        prepared[i].cycles = prepared[src].cycles;
        prepared[i].energyUnits = prepared[src].energyUnits;
        prepared[i].sliceCycles = prepared[src].sliceCycles;
        prepared[i].sliceEnergyUnits = prepared[src].sliceEnergyUnits;
        prepared[i].predictedCycles = prepared[src].predictedCycles;
    }

    // Faults mutate the per-index copies only — the cache holds the
    // clean simulation, so a faulted stream can never poison a later
    // prepare.
    if (faults)
        faults->applyPrepareFaults(prepared);
    if (stats) {
        stats->jobs = jobs.size();
        stats->simulated = uniq.size();
        // Phase 1 classified every job exactly once: cache hit,
        // duplicate of an earlier miss, or fresh simulation.
        std::size_t hits = 0;
        for (const std::size_t src : copyFrom)
            hits += src == static_cast<std::size_t>(-1) ? 1 : 0;
        stats->cacheHits = hits;
        stats->coalesced = jobs.size() - hits - uniq.size();
    }
    return prepared;
}

double
SimulationEngine::nominalSeconds(const core::PreparedJob &job) const
{
    return static_cast<double>(job.cycles) / accel.nominalFrequencyHz();
}

RunMetrics
SimulationEngine::run(core::DvfsController &controller,
                      const std::vector<core::PreparedJob> &jobs,
                      std::vector<JobTrace> *trace,
                      const FaultSchedule *faults) const
{
    controller.reset();
    if (trace) {
        trace->clear();
        trace->reserve(jobs.size());
    }

    RunMetrics metrics;
    const double v_nominal = energyModel.params().vNominal;
    std::size_t current_level = opTable.nominalIndex();

    // Jobs are periodic (one per deadline interval, Figure 1): when a
    // job overruns its deadline, the accelerator is still busy when
    // the next job is released, so the successor starts late and has
    // less than a full period of budget.
    double carry_seconds = 0.0;

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &job = jobs[i];
        const double budget =
            engineConfig.deadlineSeconds - carry_seconds;
        const core::Decision decision =
            controller.decide(job, current_level,
                              std::max(budget, 1e-9));
        panicIf(decision.level >= opTable.size(),
                "controller '", controller.name(),
                "' chose invalid level ", decision.level);

        // DVFS switch faults: a denied transition leaves the
        // accelerator at its current level (the controller learns of
        // it through current_level on the next decide()); a settle
        // fault inflates the switch time.
        const JobFaults *fault = faults ? &faults->at(i) : nullptr;
        std::size_t effective_level = decision.level;
        if (fault && fault->switchDenied &&
            effective_level != current_level)
            effective_level = current_level;
        const auto &op = opTable[effective_level];

        const bool switched = effective_level != current_level;
        double switch_seconds = (switched && decision.chargeSwitch)
            ? engineConfig.switchTimeSeconds
            : 0.0;
        if (fault)
            switch_seconds *= fault->settleFactor;
        current_level = effective_level;

        const double exec_seconds =
            static_cast<double>(job.cycles) / op.frequencyHz;
        const double total_seconds = decision.overheadSeconds +
            switch_seconds + exec_seconds;

        const double exec_energy =
            energyModel.jobEnergy(job.energyUnits, job.cycles, op);
        // The predictor slice runs at nominal voltage/frequency (it is
        // a separate small block, Figure 5); charge its dynamic energy
        // plus leakage for its runtime.
        const double overhead_energy =
            energyModel.dynamicEnergy(decision.overheadEnergyUnits,
                                      v_nominal) +
            (decision.overheadEnergyUnits > 0.0
                 ? energyModel.leakagePower(v_nominal) *
                       decision.overheadSeconds
                 : 0.0) +
            decision.overheadEnergyJoules;

        const double finish_seconds = carry_seconds + total_seconds;
        const bool missed =
            finish_seconds > engineConfig.deadlineSeconds;
        carry_seconds = std::max(
            0.0, finish_seconds - engineConfig.deadlineSeconds);

        metrics.jobs += 1;
        metrics.misses += missed ? 1 : 0;
        metrics.switches += switched ? 1 : 0;
        metrics.execEnergyJoules += exec_energy;
        metrics.overheadEnergyJoules += overhead_energy;
        metrics.execSeconds += exec_seconds;
        metrics.overheadSeconds +=
            decision.overheadSeconds + switch_seconds;

        const double nominal_seconds = nominalSeconds(job);
        controller.observe(job, nominal_seconds);

        if (trace) {
            JobTrace t;
            t.level = effective_level;
            t.actualNominalSeconds = nominal_seconds;
            t.predictedNominalSeconds =
                decision.predictedNominalSeconds;
            t.execSeconds = exec_seconds;
            t.totalSeconds = total_seconds;
            t.energyJoules = exec_energy + overhead_energy;
            t.missed = missed;
            trace->push_back(t);
        }
    }
    return metrics;
}

} // namespace sim
} // namespace predvfs
