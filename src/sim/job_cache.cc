#include "sim/job_cache.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "rtl/serialize.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace predvfs {
namespace sim {

double
JobCache::Stats::hitRate() const
{
    const std::uint64_t probes = hits + misses;
    return probes == 0
        ? 0.0
        : static_cast<double>(hits) / static_cast<double>(probes);
}

JobCache::JobCache(std::size_t capacity_bytes)
    : capacity(capacity_bytes)
{
}

namespace {

inline std::uint64_t
mixWord(std::uint64_t h, std::uint64_t w)
{
    constexpr std::uint64_t mult = 0x9E3779B97F4A7C15ull;
    h = (h ^ w) * mult;
    h ^= h >> 29;
    return h;
}

inline std::uint64_t
finalizeHash(std::uint64_t h)
{
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return h;
}

/**
 * Word-stream hasher over four independent lanes. mixWord's multiply
 * chain is serially dependent, so a single-lane hash is latency-bound
 * at ~7 cycles per 8 bytes; round-robining words across four lanes
 * runs the chains in parallel. Canonical keys reach hundreds of
 * kilobytes on image workloads and are hashed on every probe, so this
 * is the cache's hot loop.
 */
struct WordHasher
{
    std::uint64_t lane[4] = {0x243F6A8885A308D3ull, 0x13198A2E03707344ull,
                             0xA4093822299F31D0ull, 0x082EFA98EC4E6C89ull};
    std::uint64_t words = 0;

    void push(std::uint64_t w)
    {
        lane[words & 3] = mixWord(lane[words & 3], w);
        ++words;
    }

    std::uint64_t digest(std::uint64_t seed,
                         std::uint64_t total_bytes) const
    {
        // Folding the length in keeps "abc" + "" distinct from
        // "ab" + "c" when ranges are hashed in sequence via the seed.
        std::uint64_t h = seed ^ (total_bytes * 1099511628211ull);
        for (int l = 0; l < 4; ++l)
            h = mixWord(h, lane[l]);
        return finalizeHash(h);
    }
};

} // namespace

std::uint64_t
JobCache::hashBytes(const void *data, std::size_t n, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    WordHasher hasher;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        hasher.push(w);
    }
    if (i < n) {
        std::uint64_t w = 0;
        std::memcpy(&w, p + i, n - i);
        hasher.push(w);
    }
    return hasher.digest(seed, n);
}

std::uint64_t
JobCache::hashDesign(const rtl::Design &design)
{
    std::ostringstream os;
    rtl::writeDesign(os, design);
    const std::string text = os.str();
    return hashBytes(text.data(), text.size());
}

std::vector<std::int64_t>
JobCache::canonicalKey(std::uint64_t stream_key, const rtl::JobInput &job)
{
    std::size_t total = 2 + job.items.size();
    for (const rtl::WorkItem &item : job.items)
        total += item.fields.size();

    std::vector<std::int64_t> key;
    key.reserve(total);
    key.push_back(static_cast<std::int64_t>(stream_key));
    key.push_back(static_cast<std::int64_t>(job.items.size()));
    for (const rtl::WorkItem &item : job.items) {
        key.push_back(static_cast<std::int64_t>(item.fields.size()));
        key.insert(key.end(), item.fields.begin(), item.fields.end());
    }
    return key;
}

std::uint64_t
JobCache::hashJob(std::uint64_t stream_key, const rtl::JobInput &job)
{
    // Must equal hashBytes(canonicalKey(...)) — same word sequence,
    // same length fold — while touching the job in place. On a
    // little-endian int64 array the byte stream is the word stream.
    std::size_t total = 2 + job.items.size();
    for (const rtl::WorkItem &item : job.items)
        total += item.fields.size();

    WordHasher hasher;
    hasher.push(stream_key);
    hasher.push(static_cast<std::uint64_t>(job.items.size()));
    for (const rtl::WorkItem &item : job.items) {
        hasher.push(static_cast<std::uint64_t>(item.fields.size()));
        for (const std::int64_t f : item.fields)
            hasher.push(static_cast<std::uint64_t>(f));
    }
    return hasher.digest(fnvOffset, total * sizeof(std::int64_t));
}

bool
JobCache::keyMatchesJob(const std::vector<std::int64_t> &key,
                        std::uint64_t stream_key,
                        const rtl::JobInput &job)
{
    std::size_t pos = 0;
    if (key.size() < 2 ||
        key[0] != static_cast<std::int64_t>(stream_key) ||
        key[1] != static_cast<std::int64_t>(job.items.size()))
        return false;
    pos = 2;
    for (const rtl::WorkItem &item : job.items) {
        if (pos + 1 + item.fields.size() > key.size() ||
            key[pos] != static_cast<std::int64_t>(item.fields.size()))
            return false;
        ++pos;
        if (!item.fields.empty() &&
            std::memcmp(&key[pos], item.fields.data(),
                        item.fields.size() * sizeof(std::int64_t)) != 0)
            return false;
        pos += item.fields.size();
    }
    return pos == key.size();
}

std::size_t
JobCache::entryBytes(const Entry &entry)
{
    // Key storage + payload + list/index node overhead (approximate,
    // but stable across runs, which is what the determinism tests
    // need).
    return entry.key.size() * sizeof(std::int64_t) + sizeof(Entry) + 64;
}

bool
JobCache::lookup(std::uint64_t stream_key, const rtl::JobInput &job,
                 CachedJob &out, std::vector<std::int64_t> *key_out,
                 std::uint64_t *hash_out)
{
    // Probes stream over the job in place; the flattened key is only
    // materialised for the caller on a miss.
    const std::uint64_t h = hashJob(stream_key, job);

    {
        std::lock_guard<std::mutex> lock(mu);
        const auto bucket = index.find(h);
        if (bucket != index.end()) {
            for (const EntryList::iterator &it : bucket->second) {
                if (keyMatchesJob(it->key, stream_key, job)) {
                    out = it->value;
                    lru.splice(lru.begin(), lru, it);
                    ++hitCount;
                    return true;
                }
            }
        }
        ++missCount;
    }
    if (key_out)
        *key_out = canonicalKey(stream_key, job);
    if (hash_out)
        *hash_out = h;
    return false;
}

void
JobCache::evictToFit(std::size_t incoming_bytes)
{
    while (!lru.empty() && usedBytes + incoming_bytes > capacity) {
        const Entry &victim = lru.back();
        auto bucket = index.find(victim.hash);
        if (bucket != index.end()) {
            auto &vec = bucket->second;
            for (auto it = vec.begin(); it != vec.end(); ++it) {
                if (&**it == &victim) {
                    vec.erase(it);
                    break;
                }
            }
            if (vec.empty())
                index.erase(bucket);
        }
        usedBytes -= victim.bytes;
        lru.pop_back();
        ++evictCount;
    }
}

void
JobCache::insert(std::uint64_t stream_key, const rtl::JobInput &job,
                 const CachedJob &value)
{
    std::vector<std::int64_t> key = canonicalKey(stream_key, job);
    const std::uint64_t h =
        hashBytes(key.data(), key.size() * sizeof(std::int64_t));
    insert(std::move(key), h, value);
}

void
JobCache::insert(std::vector<std::int64_t> key, std::uint64_t hash,
                 const CachedJob &value)
{
    Entry entry;
    entry.key = std::move(key);
    entry.hash = hash;
    entry.value = value;
    entry.bytes = entryBytes(entry);

    std::lock_guard<std::mutex> lock(mu);
    if (entry.bytes > capacity)
        return;

    // Refresh an existing entry in place (same key means same value;
    // re-inserting after a concurrent duplicate miss must not grow
    // the cache).
    const auto bucket = index.find(entry.hash);
    if (bucket != index.end()) {
        for (const EntryList::iterator &it : bucket->second) {
            if (it->key == entry.key) {
                lru.splice(lru.begin(), lru, it);
                return;
            }
        }
    }

    evictToFit(entry.bytes);
    usedBytes += entry.bytes;
    lru.push_front(std::move(entry));
    index[lru.front().hash].push_back(lru.begin());
    ++insertCount;
}

JobCache::Stats
JobCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s;
    s.hits = hitCount;
    s.misses = missCount;
    s.insertions = insertCount;
    s.evictions = evictCount;
    s.entries = lru.size();
    s.bytes = usedBytes;
    s.capacityBytes = capacity;
    return s;
}

void
JobCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    lru.clear();
    index.clear();
    usedBytes = 0;
    hitCount = missCount = insertCount = evictCount = 0;
}

namespace {

constexpr const char *snapshotMagic = "predvfs-jobcache-v1";

/** 64-bit FNV-1a, matching persist.cc's checksum conventions. */
std::uint64_t
fnv1a(const char *data, std::size_t n)
{
    std::uint64_t hash = JobCache::fnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ULL;
    }
    return hash;
}

void
hex16(std::ostream &os, std::uint64_t v)
{
    os << std::hex << std::setfill('0') << std::setw(16) << v
       << std::dec << std::setfill(' ');
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * Parse one "entry ..." line body (the part before " crc <hex>",
 * already checksum-verified). Returns false on any shape violation —
 * a well-checksummed line can still be hostile, so token counts and
 * allocations stay bounded by the line's actual length.
 */
bool
parseEntryBody(const std::string &body, std::vector<std::int64_t> &key,
               CachedJob &value)
{
    std::istringstream is(body);
    std::string keyword;
    std::uint64_t nkey = 0;
    is >> keyword >> nkey;
    if (is.fail() || keyword != "entry")
        return false;
    // A canonical key holds at least [stream key, item count], and the
    // line must physically contain nkey tokens: two characters each at
    // minimum, so nkey beyond body.size() / 2 cannot be satisfied and
    // must not drive the reserve below.
    if (nkey < 2 || nkey > body.size() / 2 + 1)
        return false;
    key.clear();
    key.reserve(nkey);
    for (std::uint64_t i = 0; i < nkey; ++i) {
        std::int64_t k = 0;
        is >> k;
        if (is.fail())
            return false;
        key.push_back(k);
    }
    std::uint64_t energy_bits = 0;
    std::uint64_t slice_energy_bits = 0;
    std::uint64_t pred_bits = 0;
    is >> value.cycles >> std::hex >> energy_bits >> std::dec
       >> value.sliceCycles >> std::hex >> slice_energy_bits
       >> pred_bits >> std::dec;
    if (is.fail())
        return false;
    std::string trailing;
    if (is >> trailing)
        return false;  // Extra tokens: not a line the writer produced.
    value.energyUnits = bitsDouble(energy_bits);
    value.sliceEnergyUnits = bitsDouble(slice_energy_bits);
    value.predictedCycles = bitsDouble(pred_bits);
    return true;
}

} // namespace

bool
JobCache::saveSnapshotFile(const std::string &path) const
{
    // Serialise under the lock (entries are small relative to the
    // I/O), then write outside it. LRU-first order means a loader
    // inserting in file order rebuilds the same recency ranking.
    std::ostringstream body;
    body << snapshotMagic << "\n";
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
            std::ostringstream line;
            line << "entry " << it->key.size();
            for (const std::int64_t k : it->key)
                line << " " << k;
            line << " " << it->value.cycles << " ";
            hex16(line, doubleBits(it->value.energyUnits));
            line << " " << it->value.sliceCycles << " ";
            hex16(line, doubleBits(it->value.sliceEnergyUnits));
            line << " ";
            hex16(line, doubleBits(it->value.predictedCycles));
            const std::string text = line.str();
            body << text << " crc ";
            hex16(body, fnv1a(text.data(), text.size()));
            body << "\n";
            ++count;
        }
    }
    const std::string content = body.str();
    std::ostringstream footer;
    footer << "footer count " << count << " checksum ";
    hex16(footer, fnv1a(content.data(), content.size()));
    footer << "\n";

    // Write to a sibling temp file and rename: rename(2) is atomic
    // within a filesystem, so readers only ever see a complete
    // snapshot or the previous one.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            util::warn("job cache snapshot: cannot open '", tmp,
                       "' for writing");
            return false;
        }
        os << content << footer.str();
        os.flush();
        if (!os) {
            util::warn("job cache snapshot: write to '", tmp,
                       "' failed");
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        util::warn("job cache snapshot: rename '", tmp, "' -> '", path,
                   "' failed");
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

JobCache::SnapshotLoadStats
JobCache::loadSnapshotFile(
    const std::string &path,
    const std::unordered_set<std::uint64_t> *accept_stream_keys)
{
    SnapshotLoadStats stats;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return stats;  // No snapshot is a normal cold start.

    std::ostringstream all;
    all << is.rdbuf();
    const std::string text = all.str();

    // Magic first (persist.cc discipline): a non-snapshot file gets a
    // clear verdict instead of a stream of per-line rejections.
    std::size_t pos = text.find('\n');
    if (pos == std::string::npos ||
        text.substr(0, pos) != snapshotMagic) {
        util::warn("job cache snapshot '", path,
                   "': not a predvfs job-cache snapshot; ignoring");
        stats.tornTail = true;
        return stats;
    }
    ++pos;

    bool footer_ok = false;
    std::size_t entry_lines = 0;
    while (pos < text.size()) {
        const std::size_t line_start = pos;
        std::size_t nl = text.find('\n', pos);
        const bool has_newline = nl != std::string::npos;
        if (!has_newline)
            nl = text.size();
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + (has_newline ? 1 : 0);

        if (line.rfind("footer ", 0) == 0) {
            // The footer covers every byte before its own line. Bytes
            // after it (or a count/checksum mismatch) mean the file
            // was spliced or torn; keep what already validated.
            std::istringstream fs(line);
            std::string kw_footer, kw_count, kw_checksum;
            std::uint64_t stored_count = 0;
            std::uint64_t stored_sum = 0;
            fs >> kw_footer >> kw_count >> stored_count >> kw_checksum
               >> std::hex >> stored_sum;
            const std::uint64_t actual =
                fnv1a(text.data(), line_start);
            footer_ok = !fs.fail() && kw_count == "count" &&
                kw_checksum == "checksum" &&
                stored_count == entry_lines && stored_sum == actual &&
                pos >= text.size();
            if (!footer_ok)
                util::warn("job cache snapshot '", path,
                           "': footer mismatch (torn write?); kept ",
                           stats.loaded, " validated entries");
            break;
        }

        if (!has_newline) {
            // A last line without its newline is a torn write even if
            // it starts with "entry": the writer always terminates
            // lines, so the tail cannot be trusted.
            ++stats.rejected;
            break;
        }

        ++entry_lines;
        const std::size_t crc_at = line.rfind(" crc ");
        if (line.rfind("entry ", 0) != 0 ||
            crc_at == std::string::npos) {
            ++stats.rejected;
            continue;
        }
        const std::string entry_body = line.substr(0, crc_at);
        std::istringstream cs(line.substr(crc_at + 5));
        std::uint64_t stored_crc = 0;
        cs >> std::hex >> stored_crc;
        if (cs.fail() ||
            stored_crc != fnv1a(entry_body.data(), entry_body.size())) {
            ++stats.rejected;
            continue;
        }

        std::vector<std::int64_t> key;
        CachedJob value;
        if (!parseEntryBody(entry_body, key, value)) {
            ++stats.rejected;
            continue;
        }
        if (accept_stream_keys &&
            accept_stream_keys->count(
                static_cast<std::uint64_t>(key[0])) == 0) {
            ++stats.rejected;
            continue;
        }
        // The content hash is recomputed, never trusted from disk:
        // hashBytes() is documented free to change between builds.
        const std::uint64_t h =
            hashBytes(key.data(), key.size() * sizeof(std::int64_t));
        insert(std::move(key), h, value);
        ++stats.loaded;
    }
    stats.tornTail = !footer_ok;
    return stats;
}

JobCache &
JobCache::global()
{
    // First read wins: a long-lived process (the prediction server)
    // must not see its cache capacity change mid-flight. Malformed
    // values warn and fall back to the default instead of aborting —
    // a bad knob should degrade the deployment, not kill it.
    static JobCache *cache = [] {
        return new JobCache(util::envSizeBytes("PREDVFS_CACHE_BYTES",
                                               defaultCapacityBytes));
    }();
    return *cache;
}

bool
JobCache::enabledByEnv()
{
    static const bool enabled =
        !util::envFlag("PREDVFS_DISABLE_CACHE", false);
    return enabled;
}

} // namespace sim
} // namespace predvfs
