/**
 * @file
 * Run-level metrics the evaluation reports: energy, deadline misses,
 * switching activity, plus optional per-job traces for the
 * time-series figures.
 */

#ifndef PREDVFS_SIM_METRICS_HH
#define PREDVFS_SIM_METRICS_HH

#include <cstddef>
#include <vector>

namespace predvfs {
namespace sim {

/** Aggregate result of running one controller over one job stream. */
struct RunMetrics
{
    std::size_t jobs = 0;
    std::size_t misses = 0;
    std::size_t switches = 0;

    double execEnergyJoules = 0.0;      //!< Accelerator execution.
    double overheadEnergyJoules = 0.0;  //!< Predictor slice runs.
    double execSeconds = 0.0;           //!< Busy time of the jobs.
    double overheadSeconds = 0.0;       //!< Slice + switch time.

    /** @return total energy (execution + predictor overhead). */
    double totalEnergyJoules() const;

    /** @return fraction of jobs that missed their deadline. */
    double missRate() const;
};

/** Per-job record for trace figures (e.g. the paper's Figure 3). */
struct JobTrace
{
    std::size_t level = 0;
    double actualNominalSeconds = 0.0;   //!< T at f0.
    double predictedNominalSeconds = 0.0;//!< Controller's estimate at f0.
    double execSeconds = 0.0;            //!< At the chosen level.
    double totalSeconds = 0.0;           //!< Including overheads.
    double energyJoules = 0.0;
    bool missed = false;
};

/** Convenience: extract a field across a trace. */
std::vector<double> traceActualSeconds(const std::vector<JobTrace> &trace);
std::vector<double> tracePredictedSeconds(
    const std::vector<JobTrace> &trace);

} // namespace sim
} // namespace predvfs

#endif // PREDVFS_SIM_METRICS_HH
