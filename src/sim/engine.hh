/**
 * @file
 * The simulation engine ties everything together: it RTL-simulates
 * each job once (full design, and the slice when a predictor is
 * given), then replays the resulting per-job records under any DVFS
 * controller, accounting time, energy, switching, and deadline
 * misses. Replaying precomputed records is exact because execution is
 * compute-bound: cycles are frequency-independent, so time at any
 * level is cycles / f(level).
 */

#ifndef PREDVFS_SIM_ENGINE_HH
#define PREDVFS_SIM_ENGINE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "accel/accelerator.hh"
#include "core/controller.hh"
#include "core/predictor.hh"
#include "power/energy_model.hh"
#include "power/operating_points.hh"
#include "sim/fault.hh"
#include "sim/metrics.hh"

namespace predvfs {

namespace util {
class ThreadPool;
} // namespace util

namespace sim {

/** Timing parameters of a simulated deployment. */
struct EngineConfig
{
    double deadlineSeconds = 1.0 / 60.0;  //!< 60 fps refresh budget.
    double switchTimeSeconds = 100e-6;    //!< DVFS settle time.
};

/**
 * How one prepare() call was answered. jobs always equals
 * cacheHits + coalesced + simulated; the serving layer's telemetry is
 * built from these, and hit/miss accounting in tests leans on the
 * identity.
 */
struct PrepareStats
{
    std::size_t jobs = 0;       //!< Records requested.
    std::size_t cacheHits = 0;  //!< Answered from the global JobCache.
    std::size_t coalesced = 0;  //!< In-batch duplicates fanned out.
    std::size_t simulated = 0;  //!< Unique jobs actually simulated.

    PrepareStats &operator+=(const PrepareStats &other)
    {
        jobs += other.jobs;
        cacheHits += other.cacheHits;
        coalesced += other.coalesced;
        simulated += other.simulated;
        return *this;
    }
};

/** Precomputes job records and replays them under controllers. */
class SimulationEngine
{
  public:
    /**
     * @param accelerator   Benchmark accelerator (design + calibration).
     * @param table         Operating points; must outlive the engine.
     * @param config        Deadline and switch time.
     * @param energy_params Optional override of the accelerator's
     *                      energy calibration (e.g. the FPGA variant).
     */
    SimulationEngine(const accel::Accelerator &accelerator,
                     const power::OperatingPointTable &table,
                     EngineConfig config,
                     std::optional<power::EnergyParams> energy_params =
                         std::nullopt);

    /**
     * RTL-simulate @p jobs once, with the optional predictor's slice.
     *
     * The returned records keep pointers into @p jobs; the caller must
     * keep the job vector alive while the records are used.
     *
     * The simulation is memoised through the process-global JobCache:
     * a record's value fields are a pure function of (design,
     * predictor, job fields), so only *unique* field vectors are
     * simulated — batch-level duplicates fan out from one simulation,
     * and repeat streams (grid sweeps, repeated experiments) hit the
     * cache outright. The unique-job miss path runs the full design
     * through CompiledDesign::runBatch. All of this is bit-identical
     * to simulating every job from scratch; set PREDVFS_DISABLE_CACHE=1
     * to run the unmemoised path instead.
     *
     * @param faults Optional fault schedule; its prepare-stage effects
     *        (readout corruption, slice stalls, model corruption, OOD
     *        spikes) are applied to the returned records. Only the
     *        clean simulation is memoised: faults mutate per-index
     *        copies after cache fan-out, exactly as they mutate
     *        freshly-simulated records, so cached and uncached prepare
     *        agree byte for byte under any schedule. Sweeping fault
     *        plans over a fixed stream is cheaper via
     *        FaultSchedule::applyPrepareFaults() on a copy of a
     *        fault-free prepared stream.
     * @param pool Optional thread pool; unique jobs are sharded over
     *        its workers. The result is bit-identical to the serial
     *        path at any worker count (each record depends only on its
     *        own job; cache probes and inserts stay serial and
     *        ordered, so the LRU history is deterministic too).
     * @param stats Optional counters describing how the call was
     *        answered (cache hits, in-batch duplicates, fresh
     *        simulations). With the cache disabled every job counts
     *        as simulated.
     */
    std::vector<core::PreparedJob>
    prepare(const std::vector<rtl::JobInput> &jobs,
            const core::SlicePredictor *predictor = nullptr,
            const FaultSchedule *faults = nullptr,
            util::ThreadPool *pool = nullptr,
            PrepareStats *stats = nullptr) const;

    /**
     * The content-addressed identity of this engine's prepared
     * streams: the design's content hash folded with a fingerprint of
     * @p predictor (slice design content, coefficients, intercept).
     * Two engines with equal stream keys produce equal records for
     * equal jobs — EngineConfig and energy-parameter overrides are
     * deliberately outside the key because no record value depends on
     * them.
     */
    std::uint64_t
    streamKey(const core::SlicePredictor *predictor) const;

    /**
     * Replay a prepared stream under @p controller.
     *
     * @param controller The DVFS policy (reset() is called first).
     * @param jobs       Prepared records.
     * @param trace      Optional per-job trace output.
     * @param faults     Optional fault schedule; its replay-stage
     *        effects (denied switches, inflated settle times) are
     *        applied per job index, identically for every controller.
     */
    RunMetrics run(core::DvfsController &controller,
                   const std::vector<core::PreparedJob> &jobs,
                   std::vector<JobTrace> *trace = nullptr,
                   const FaultSchedule *faults = nullptr) const;

    const accel::Accelerator &accelerator() const { return accel; }
    const power::OperatingPointTable &table() const { return opTable; }
    const EngineConfig &config() const { return engineConfig; }

    /** Nominal execution seconds of a prepared job. */
    double nominalSeconds(const core::PreparedJob &job) const;

    /** Energy model in effect (after any platform override). */
    const power::EnergyModel &energy() const { return energyModel; }

  private:
    const accel::Accelerator &accel;
    const power::OperatingPointTable &opTable;
    EngineConfig engineConfig;
    power::EnergyModel energyModel;
    // The design is compiled once here, not per prepare() call; the
    // interpreter is const and reentrant, so parallel prepare shares it.
    rtl::Interpreter fullInterp;
    std::uint64_t designHash;  //!< Content hash of the full design.
    // The first prepare() call profiles a slice of its stream and
    // builds speculative lockstep routes for branch-dynamic FSMs
    // (results are bit-identical; only batch throughput changes).
    // call_once gives the retuned tables a happens-before edge over
    // every later prepare, including concurrent first calls.
    mutable std::once_flag specOnce;
};

} // namespace sim
} // namespace predvfs

#endif // PREDVFS_SIM_ENGINE_HH
