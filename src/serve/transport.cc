#include "serve/transport.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define PREDVFS_HAVE_UNIX_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define PREDVFS_HAVE_UNIX_SOCKETS 0
#endif

namespace predvfs {
namespace serve {

namespace {

/** One direction of a loopback pipe: a chunked byte queue. */
struct Pipe
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> chunks;
    std::size_t headOffset = 0;  //!< Consumed bytes of chunks.front().
    bool closed = false;

    void write(const void *buf, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(buf);
        std::lock_guard<std::mutex> lock(mu);
        if (closed)
            return;
        chunks.emplace_back(p, p + n);
        cv.notify_all();
    }

    std::size_t read(void *buf, std::size_t max)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return !chunks.empty() || closed; });
        if (chunks.empty())
            return 0;  // Closed and drained: EOF.
        std::size_t copied = 0;
        auto *out = static_cast<std::uint8_t *>(buf);
        while (copied < max && !chunks.empty()) {
            std::vector<std::uint8_t> &head = chunks.front();
            const std::size_t take =
                std::min(max - copied, head.size() - headOffset);
            std::memcpy(out + copied, head.data() + headOffset, take);
            copied += take;
            headOffset += take;
            if (headOffset == head.size()) {
                chunks.pop_front();
                headOffset = 0;
            }
        }
        return copied;
    }

    void close()
    {
        std::lock_guard<std::mutex> lock(mu);
        closed = true;
        cv.notify_all();
    }
};

/** The shared state of a loopback pair: two pipes, one per direction. */
struct Duplex
{
    Pipe aToB;
    Pipe bToA;
};

/** One endpoint of a loopback pair. */
class LoopbackConnection : public Connection
{
  public:
    LoopbackConnection(std::shared_ptr<Duplex> shared, bool is_a)
        : duplex(std::move(shared)), sideA(is_a)
    {
    }

    ~LoopbackConnection() override { close(); }

    std::size_t read(void *buf, std::size_t max) override
    {
        return inbound().read(buf, max);
    }

    bool writeAll(const void *buf, std::size_t n) override
    {
        Pipe &pipe = outbound();
        {
            std::lock_guard<std::mutex> lock(pipe.mu);
            if (pipe.closed)
                return false;
        }
        pipe.write(buf, n);
        return true;
    }

    void close() override
    {
        // Closing an endpoint ends both directions, like a socket
        // close: the peer's reads see EOF and its writes start failing.
        duplex->aToB.close();
        duplex->bToA.close();
    }

  private:
    Pipe &inbound() { return sideA ? duplex->bToA : duplex->aToB; }
    Pipe &outbound() { return sideA ? duplex->aToB : duplex->bToA; }

    std::shared_ptr<Duplex> duplex;
    bool sideA;
};

} // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
makeLoopbackPair()
{
    auto duplex = std::make_shared<Duplex>();
    return {std::make_unique<LoopbackConnection>(duplex, true),
            std::make_unique<LoopbackConnection>(duplex, false)};
}

bool
unixSocketsAvailable()
{
    return PREDVFS_HAVE_UNIX_SOCKETS != 0;
}

bool
tcpSocketsAvailable()
{
    return PREDVFS_HAVE_UNIX_SOCKETS != 0;
}

std::string
Endpoint::address() const
{
    if (kind == Kind::Tcp)
        return "tcp://" + host + ":" + std::to_string(port);
    return path;
}

bool
tryParseEndpoint(const std::string &address, Endpoint &out,
                 std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    out = Endpoint{};

    static const std::string kTcpScheme = "tcp://";
    static const std::string kUnixScheme = "unix://";
    if (address.rfind(kUnixScheme, 0) == 0) {
        out.kind = Endpoint::Kind::Unix;
        out.path = address.substr(kUnixScheme.size());
        if (out.path.empty())
            return fail("unix:// address has an empty path");
        return true;
    }
    if (address.rfind(kTcpScheme, 0) != 0) {
        // No scheme: a bare Unix socket path, the historical form.
        if (address.empty())
            return fail("empty address");
        out.kind = Endpoint::Kind::Unix;
        out.path = address;
        return true;
    }

    const std::string authority = address.substr(kTcpScheme.size());
    const std::size_t colon = authority.rfind(':');
    if (colon == std::string::npos)
        return fail("tcp:// address needs host:port");
    out.kind = Endpoint::Kind::Tcp;
    out.host = authority.substr(0, colon);

    const std::string port_text = authority.substr(colon + 1);
    if (port_text.empty() || port_text.size() > 5)
        return fail("bad tcp port '" + port_text + "'");
    unsigned long port = 0;
    for (const char c : port_text) {
        if (c < '0' || c > '9')
            return fail("bad tcp port '" + port_text + "'");
        port = port * 10 + static_cast<unsigned long>(c - '0');
    }
    if (port > 65535)
        return fail("tcp port " + port_text + " out of range");
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

Endpoint
parseEndpoint(const std::string &address)
{
    Endpoint endpoint;
    std::string error;
    util::fatalIf(!tryParseEndpoint(address, endpoint, &error),
                  "parseEndpoint('", address, "'): ", error);
    return endpoint;
}

std::unique_ptr<Listener>
makeListener(const std::string &address)
{
    const Endpoint endpoint = parseEndpoint(address);
    if (endpoint.kind == Endpoint::Kind::Tcp)
        return std::make_unique<TcpListener>(endpoint.host,
                                             endpoint.port);
    return std::make_unique<UnixListener>(endpoint.path);
}

std::unique_ptr<Connection>
connectEndpoint(const std::string &address, int timeout_ms)
{
    Endpoint endpoint;
    std::string error;
    if (!tryParseEndpoint(address, endpoint, &error)) {
        util::warn("connectEndpoint('", address, "'): ", error);
        return nullptr;
    }
    if (endpoint.kind == Endpoint::Kind::Tcp)
        return connectTcp(endpoint.host, endpoint.port, timeout_ms);
    return connectWithRetry(endpoint.path, timeout_ms);
}

#if PREDVFS_HAVE_UNIX_SOCKETS

namespace {

/** A connected AF_UNIX stream socket. */
class SocketConnection : public Connection
{
  public:
    explicit SocketConnection(int socket_fd) : fd(socket_fd) {}

    ~SocketConnection() override { close(); }

    std::size_t read(void *buf, std::size_t max) override
    {
        for (;;) {
            const ssize_t n = ::recv(fd, buf, max, 0);
            if (n >= 0)
                return static_cast<std::size_t>(n);
            if (errno == EINTR)
                continue;
            return 0;  // Connection reset/closed: report EOF.
        }
    }

    bool writeAll(const void *buf, std::size_t n) override
    {
        const auto *p = static_cast<const std::uint8_t *>(buf);
        std::size_t sent = 0;
        while (sent < n) {
            // MSG_NOSIGNAL: a vanished peer must surface as a failed
            // write, not a process-killing SIGPIPE.
            const ssize_t w =
                ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
            if (w < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            sent += static_cast<std::size_t>(w);
        }
        return true;
    }

    void close() override
    {
        int expected = fd.load();
        if (expected >= 0 && fd.compare_exchange_strong(expected, -1)) {
            ::shutdown(expected, SHUT_RDWR);
            ::close(expected);
        }
    }

  private:
    std::atomic<int> fd;
};

} // namespace

struct ListenerState
{
    std::atomic<bool> closing{false};
};

namespace {

/** Nagle off: frames are small and latency-sensitive; the server's
 *  accumulation window already provides the batching. Best effort —
 *  a failure costs latency, not correctness. */
void
setTcpNoDelay(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/**
 * The shared accept loop: poll with a short timeout instead of
 * blocking in accept(2) — the stop flag is the only portable way to
 * end the loop without racing a concurrent close() of the fd.
 */
std::unique_ptr<Connection>
acceptLoop(int fd, ListenerState &state, bool tcp_nodelay)
{
    while (!state.closing.load()) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, 100);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return nullptr;
        }
        if (r == 0)
            continue;
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            return nullptr;
        }
        if (tcp_nodelay)
            setTcpNoDelay(conn);
        return std::make_unique<SocketConnection>(conn);
    }
    return nullptr;
}

/** @return the IPv4 address @p host names, or false when it is not
 *  numeric. Empty and "*" mean wildcard for listeners and loopback
 *  for connectors; "localhost" is always loopback. */
bool
resolveIpv4(const std::string &host, bool for_listen, in_addr *out)
{
    if (host.empty() || host == "*") {
        out->s_addr =
            htonl(for_listen ? INADDR_ANY : INADDR_LOOPBACK);
        return true;
    }
    if (host == "localhost") {
        out->s_addr = htonl(INADDR_LOOPBACK);
        return true;
    }
    return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

} // namespace

UnixListener::UnixListener(const std::string &path)
    : sockPath(path), state(std::make_shared<ListenerState>())
{
    sockaddr_un addr{};
    util::fatalIf(path.size() >= sizeof(addr.sun_path),
                  "UnixListener: socket path too long: ", path);

    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    util::fatalIf(fd < 0, "UnixListener: socket(): ",
                  std::strerror(errno));

    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    util::fatalIf(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) != 0,
                  "UnixListener: bind(", path, "): ",
                  std::strerror(errno));
    util::fatalIf(::listen(fd, 16) != 0, "UnixListener: listen(): ",
                  std::strerror(errno));
}

UnixListener::~UnixListener()
{
    close();
}

std::unique_ptr<Connection>
UnixListener::accept()
{
    return acceptLoop(fd, *state, /*tcp_nodelay=*/false);
}

void
UnixListener::close()
{
    if (state->closing.exchange(true))
        return;
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    ::unlink(sockPath.c_str());
}

std::unique_ptr<Connection>
connectWithRetry(const std::string &path, int timeout_ms)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        util::warn("connectWithRetry: socket path too long: ", path);
        return nullptr;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    // timeout_ms = 0: the deadline is "now", so a failed first attempt
    // falls through the deadline check below without ever sleeping —
    // the documented single-shot probe.
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return nullptr;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return std::make_unique<SocketConnection>(fd);
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            return nullptr;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

TcpListener::TcpListener(const std::string &host, std::uint16_t port)
    : bindHost(host), state(std::make_shared<ListenerState>())
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    util::fatalIf(!resolveIpv4(host, /*for_listen=*/true, &addr.sin_addr),
                  "TcpListener: bad host '", host,
                  "' (numeric IPv4, 'localhost', or '*' expected)");

    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    util::fatalIf(fd < 0, "TcpListener: socket(): ",
                  std::strerror(errno));

    // SO_REUSEADDR: restart smoke tests rebind the same fixed port
    // seconds after a SIGKILL leaves it in TIME_WAIT.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    util::fatalIf(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) != 0,
                  "TcpListener: bind(", host, ":", port, "): ",
                  std::strerror(errno));
    util::fatalIf(::listen(fd, 16) != 0, "TcpListener: listen(): ",
                  std::strerror(errno));

    // Read the bound port back: with port 0 the kernel picked one,
    // and tests need the concrete address to dial.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    util::fatalIf(::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                                &len) != 0,
                  "TcpListener: getsockname(): ", std::strerror(errno));
    boundPort = ntohs(bound.sin_port);
}

TcpListener::~TcpListener()
{
    close();
}

std::unique_ptr<Connection>
TcpListener::accept()
{
    return acceptLoop(fd, *state, /*tcp_nodelay=*/true);
}

void
TcpListener::close()
{
    if (state->closing.exchange(true))
        return;
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

std::string
TcpListener::address() const
{
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::Tcp;
    endpoint.host = bindHost.empty() || bindHost == "*"
        ? std::string("127.0.0.1")
        : bindHost;
    if (endpoint.host == "localhost")
        endpoint.host = "127.0.0.1";
    endpoint.port = boundPort;
    return endpoint.address();
}

std::unique_ptr<Connection>
connectTcp(const std::string &host, std::uint16_t port, int timeout_ms)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (!resolveIpv4(host, /*for_listen=*/false, &addr.sin_addr)) {
        util::warn("connectTcp: bad host '", host, "'");
        return nullptr;
    }

    // Same retry discipline as connectWithRetry(): timeout_ms = 0 is
    // a single-shot probe because the deadline is already in the past
    // when the first attempt fails.
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return nullptr;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            setTcpNoDelay(fd);
            return std::make_unique<SocketConnection>(fd);
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            return nullptr;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

#else  // !PREDVFS_HAVE_UNIX_SOCKETS

struct ListenerState
{
};

UnixListener::UnixListener(const std::string &path) : sockPath(path)
{
    util::fatal("UnixListener: Unix-domain sockets are unavailable on "
                "this platform; use the loopback transport");
}

UnixListener::~UnixListener() = default;

std::unique_ptr<Connection>
UnixListener::accept()
{
    return nullptr;
}

void
UnixListener::close()
{
}

TcpListener::TcpListener(const std::string &host, std::uint16_t)
    : bindHost(host)
{
    util::fatal("TcpListener: TCP sockets are unavailable on this "
                "platform; use the loopback transport");
}

TcpListener::~TcpListener() = default;

std::unique_ptr<Connection>
TcpListener::accept()
{
    return nullptr;
}

void
TcpListener::close()
{
}

std::string
TcpListener::address() const
{
    return Endpoint{Endpoint::Kind::Tcp, "", bindHost, boundPort}
        .address();
}

std::unique_ptr<Connection>
connectWithRetry(const std::string &, int)
{
    util::warn("connectWithRetry: Unix-domain sockets are unavailable "
               "on this platform");
    return nullptr;
}

std::unique_ptr<Connection>
connectTcp(const std::string &, std::uint16_t, int)
{
    util::warn("connectTcp: TCP sockets are unavailable on this "
               "platform");
    return nullptr;
}

#endif  // PREDVFS_HAVE_UNIX_SOCKETS

std::unique_ptr<Connection>
connectUnix(const std::string &path, int timeout_ms)
{
    return connectWithRetry(path, timeout_ms);
}

} // namespace serve
} // namespace predvfs
