#include "serve/chaos.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/random.hh"

namespace predvfs {
namespace serve {

namespace {

class ChaosConnection : public Connection
{
  public:
    ChaosConnection(std::unique_ptr<Connection> inner_,
                    const ChaosPlan &plan_,
                    std::uint64_t connection_index)
        : inner(std::move(inner_)), plan(plan_),
          rng(util::Rng(plan_.seed).split(connection_index))
    {
    }

    std::size_t read(void *buf, std::size_t max) override
    {
        // A read means the caller is done writing for now; anything
        // still held by a lazy flush must go out first, or a request
        // whose tail we are sitting on can never be answered.
        if (!flushPending())
            return 0;
        if (max > 1 && rng.bernoulli(plan.shortReadRate)) {
            const std::size_t cap = static_cast<std::size_t>(
                rng.uniformInt(1, 7));
            max = std::min(max, cap);
        }
        return inner->read(buf, max);
    }

    bool writeAll(const void *buf, std::size_t n) override
    {
        if (!flushPending())
            return false;
        const auto *p = static_cast<const std::uint8_t *>(buf);
        if (n == 0)
            return inner->writeAll(buf, 0);

        if (rng.bernoulli(plan.disconnectRate)) {
            // Sever mid-write: deliver a strict prefix, drop the
            // rest, and close. The peer sees a clean byte stream that
            // ends inside a frame.
            const std::size_t sent = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
            if (sent > 0)
                inner->writeAll(p, sent);
            inner->close();
            return false;
        }

        if (rng.bernoulli(plan.delayFlushRate) && n > 1) {
            // Hold back a non-empty tail until the next operation.
            const std::size_t keep = static_cast<std::size_t>(
                rng.uniformInt(1, static_cast<std::int64_t>(n) - 1));
            const std::size_t head = n - keep;
            if (head > 0 && !inner->writeAll(p, head))
                return false;
            pending.insert(pending.end(), p + head, p + n);
            return true;
        }

        if (rng.bernoulli(plan.partialWriteRate) && n > 1) {
            // Fragment into 2–4 chunks at random cut points; same
            // bytes, same order, different packet boundaries.
            const int chunks = static_cast<int>(rng.uniformInt(2, 4));
            std::size_t off = 0;
            for (int c = 0; c < chunks && off < n; ++c) {
                const std::size_t remaining = n - off;
                std::size_t take = remaining;
                if (c + 1 < chunks && remaining > 1)
                    take = static_cast<std::size_t>(rng.uniformInt(
                        1, static_cast<std::int64_t>(remaining) - 1));
                if (c + 1 == chunks)
                    take = remaining;
                if (!inner->writeAll(p + off, take))
                    return false;
                off += take;
            }
            return true;
        }

        return inner->writeAll(p, n);
    }

    void close() override
    {
        // Bytes written before a clean close must still arrive (a
        // trailing Bye is not a fault); only disconnects drop data.
        flushPending();
        inner->close();
    }

  private:
    /** @return false if the flush hit a closed peer. */
    bool flushPending()
    {
        if (pending.empty())
            return true;
        std::vector<std::uint8_t> out;
        out.swap(pending);
        return inner->writeAll(out.data(), out.size());
    }

    std::unique_ptr<Connection> inner;
    ChaosPlan plan;
    util::Rng rng;
    std::vector<std::uint8_t> pending;
};

} // namespace

std::unique_ptr<Connection>
chaosWrap(std::unique_ptr<Connection> inner, const ChaosPlan &plan,
          std::uint64_t connection_index)
{
    return std::make_unique<ChaosConnection>(std::move(inner), plan,
                                             connection_index);
}

} // namespace serve
} // namespace predvfs
