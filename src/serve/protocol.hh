/**
 * @file
 * Wire protocol of the prediction service.
 *
 * Every message is one length-prefixed frame:
 *
 *   u32 payload_len   bytes following this 8-byte header
 *   u16 type          MsgType
 *   u16 reserved      must be zero
 *   ...payload        fixed-width little-endian fields
 *
 * Integers are little-endian at fixed widths; doubles travel as their
 * IEEE-754 bit pattern in a u64, so a reply byte-equals the server's
 * in-memory value — the replay harness depends on that. Strings are a
 * u32 length followed by raw bytes. payload_len is capped at
 * kMaxFramePayload; a peer announcing more is answered with a typed
 * Error and the connection is closed (framing can no longer be
 * trusted).
 *
 * The FrameDecoder is deliberately a standalone incremental parser:
 * the robustness corpus feeds it truncated, oversized, and garbage
 * byte streams directly, without a live server. Malformed input must
 * surface as Status::Error (latched — once framing is lost every
 * subsequent byte is garbage too), never as a crash or an allocation
 * proportional to an attacker-chosen length field.
 */

#ifndef PREDVFS_SERVE_PROTOCOL_HH
#define PREDVFS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/design.hh"

namespace predvfs {
namespace serve {

/** Protocol magic carried in Hello ("PVFS"). */
constexpr std::uint32_t kMagic = 0x50564653u;

/** Protocol version; bumped on any incompatible frame change.
 *  v2 added PredictMsg::deadlineMicros and ErrorMsg::retryAfterMicros. */
constexpr std::uint16_t kVersion = 2;

/** Upper bound on one frame's payload (image-workload jobs run to
 *  hundreds of kilobytes; 4 MiB leaves headroom without letting a
 *  corrupt length field drive allocation). */
constexpr std::uint32_t kMaxFramePayload = 4u << 20;

/** Frame types. Requests flow client→server, replies server→client. */
enum class MsgType : std::uint16_t
{
    Hello = 1,         //!< magic + version check.
    HelloOk = 2,       //!< server accepts the version.
    OpenStream = 3,    //!< benchmark name → stream handle.
    StreamOpened = 4,  //!< stream id + content-addressed stream key.
    Predict = 5,       //!< one job's field vectors.
    PredictReply = 6,  //!< the job's prepared value fields.
    Stats = 7,         //!< telemetry request.
    StatsReply = 8,    //!< telemetry as a JSON document.
    Error = 9,         //!< typed error, optionally per-request.
    Bye = 10,          //!< clean client shutdown.
};

/** Error codes carried by MsgType::Error. */
enum class ErrorCode : std::uint32_t
{
    BadMagic = 1,
    BadVersion = 2,
    BadFrame = 3,         //!< undecodable payload or header.
    UnknownType = 4,
    UnknownBenchmark = 5,
    UnknownStream = 6,
    Oversized = 7,        //!< announced payload above kMaxFramePayload.
    ShuttingDown = 8,
    Busy = 9,             //!< stream queue full; retry after the hint.
    DeadlineExceeded = 10,  //!< request expired while queued.
};

/** @return a stable name for an error code (logs and tests). */
const char *errorCodeName(ErrorCode code);

/** One decoded frame: type plus raw payload bytes. */
struct Frame
{
    std::uint16_t type = 0;
    std::vector<std::uint8_t> payload;
};

/** @name Message bodies */
/// @{
struct HelloMsg
{
    std::uint32_t magic = kMagic;
    std::uint16_t version = kVersion;
};

struct OpenStreamMsg
{
    std::string benchmark;
};

struct StreamOpenedMsg
{
    std::uint32_t streamId = 0;
    std::uint64_t streamKey = 0;  //!< design ⊕ predictor fingerprint.
};

struct PredictMsg
{
    std::uint32_t streamId = 0;
    std::uint64_t requestId = 0;  //!< echoed verbatim in the reply.

    /** Optional deadline, microseconds from server receipt; 0 = none.
     *  A request still queued when it expires is answered with a
     *  DeadlineExceeded error. Expiry is only checked before its batch
     *  is handed to the simulator — never afterwards — so whether a
     *  reply carries values or the typed error, the values themselves
     *  are deterministic. */
    std::uint64_t deadlineMicros = 0;

    rtl::JobInput job;
};

struct PredictReplyMsg
{
    std::uint64_t requestId = 0;
    std::uint64_t cycles = 0;
    double energyUnits = 0.0;
    std::uint64_t sliceCycles = 0;
    double sliceEnergyUnits = 0.0;
    double predictedCycles = 0.0;
};

struct StatsMsg
{
    std::uint32_t streamId = 0;  //!< 0 = server-wide.
};

struct StatsReplyMsg
{
    std::string json;
};

struct ErrorMsg
{
    std::uint32_t code = 0;
    std::uint64_t requestId = 0;  //!< 0 when not tied to a request.

    /** For Busy: how long the server suggests waiting before the
     *  retry, in microseconds. 0 = no hint. */
    std::uint64_t retryAfterMicros = 0;

    std::string message;
};
/// @}

/**
 * Serialise a complete frame (header + payload). fatal() if the
 * payload exceeds kMaxFramePayload — that is a caller bug or a job
 * too large for the protocol, not a recoverable condition.
 */
std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::vector<std::uint8_t> &
                                          payload);

/** @name Payload encoders */
/// @{
std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
std::vector<std::uint8_t> encodeOpenStream(const OpenStreamMsg &msg);
std::vector<std::uint8_t> encodeStreamOpened(const StreamOpenedMsg &msg);
std::vector<std::uint8_t> encodePredict(const PredictMsg &msg);
std::vector<std::uint8_t> encodePredictReply(const PredictReplyMsg &msg);
std::vector<std::uint8_t> encodeStats(const StatsMsg &msg);
std::vector<std::uint8_t> encodeStatsReply(const StatsReplyMsg &msg);
std::vector<std::uint8_t> encodeError(const ErrorMsg &msg);
/// @}

/** @name Payload decoders
 *  @return false on truncation, trailing bytes, or counts that exceed
 *  the payload; the output struct is unspecified on failure. */
/// @{
bool decodeHello(const std::vector<std::uint8_t> &payload, HelloMsg &out);
bool decodeOpenStream(const std::vector<std::uint8_t> &payload,
                      OpenStreamMsg &out);
bool decodeStreamOpened(const std::vector<std::uint8_t> &payload,
                        StreamOpenedMsg &out);
bool decodePredict(const std::vector<std::uint8_t> &payload,
                   PredictMsg &out);
bool decodePredictReply(const std::vector<std::uint8_t> &payload,
                        PredictReplyMsg &out);
bool decodeStats(const std::vector<std::uint8_t> &payload, StatsMsg &out);
bool decodeStatsReply(const std::vector<std::uint8_t> &payload,
                      StatsReplyMsg &out);
bool decodeError(const std::vector<std::uint8_t> &payload, ErrorMsg &out);
/// @}

/**
 * Incremental frame parser. Feed bytes as they arrive; pull frames
 * until NeedMore. Decoding errors (bad reserved field, oversized
 * length) latch: every later next() returns Error too.
 */
class FrameDecoder
{
  public:
    enum class Status { NeedMore, Ready, Error };

    /** Append @p n raw bytes from the connection. */
    void feed(const void *data, std::size_t n);

    /**
     * Try to extract the next frame into @p out.
     * @param error Optional description when Status::Error.
     */
    Status next(Frame &out, std::string *error = nullptr);

    /** @return true when unconsumed bytes are buffered — an EOF now
     *  means the peer vanished mid-frame. */
    bool midFrame() const { return !failed && !buffer.empty(); }

    /** @return true once a framing error has latched. */
    bool bad() const { return failed; }

  private:
    std::vector<std::uint8_t> buffer;
    std::size_t consumed = 0;  //!< Bytes of buffer already parsed.
    bool failed = false;
    std::string failReason;
};

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_PROTOCOL_HH
