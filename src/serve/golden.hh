/**
 * @file
 * Golden end-to-end reports for the serving layer.
 *
 * A GoldenReport captures everything the replay harness asserts about
 * one benchmark served over the wire: the content-addressed stream
 * key, a digest chained over every reply's value fields byte-for-byte,
 * and the Table-3 metrics (baseline and prediction schemes) replayed
 * from those replies. It is deliberately buildable *client-side only*:
 * buildGoldenReport() reconstructs the engine and controllers from the
 * public experiment options and never peeks into the server, so the
 * socket-split client binary can emit the same report the in-process
 * tests golden against.
 *
 * The text format prints doubles as hexfloats, which round-trip
 * exactly through strtod — a golden diff is a bit-level diff.
 */

#ifndef PREDVFS_SERVE_GOLDEN_HH
#define PREDVFS_SERVE_GOLDEN_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/client.hh"
#include "sim/experiment.hh"

namespace predvfs {
namespace serve {

/** Everything the replay harness asserts for one served benchmark. */
struct GoldenReport
{
    std::string benchmark;
    std::uint64_t streamKey = 0;
    std::uint64_t jobs = 0;

    /** JobCache::hashBytes chained over every reply's value fields
     *  (cycles, energy, slice cycles/energy, prediction), in job
     *  order. Catches any byte-level response divergence. */
    std::uint64_t responseDigest = 0;

    sim::RunMetrics baseline;    //!< Replayed at constant nominal V/f.
    sim::RunMetrics prediction;  //!< Replayed under the paper's scheme.
};

/** @return true when every field matches bit-for-bit. */
bool operator==(const GoldenReport &a, const GoldenReport &b);

/** Serialise to the golden text format (hexfloat doubles). */
std::string formatGoldenReport(const GoldenReport &report);

/**
 * Parse the golden text format. fatal() on malformed input — a golden
 * that does not parse is a harness bug, not a tolerable state.
 */
GoldenReport parseGoldenReport(std::istream &in);

/** parseGoldenReport() over a file. fatal() if unreadable. */
GoldenReport loadGoldenReport(const std::string &path);

/**
 * Drive @p benchmark's full test workload through @p client on an
 * already-open stream and build the report: request every test job
 * (pipelined), digest the replies, and replay the baseline and
 * prediction controllers over reply-built records using a locally
 * constructed engine. @p options must equal the server's experiment
 * options for the metrics to be meaningful.
 */
GoldenReport buildGoldenReport(PredictionClient &client,
                               std::uint32_t stream_id,
                               const std::string &benchmark,
                               const sim::ExperimentOptions &options);

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_GOLDEN_HH
