/**
 * @file
 * The long-lived prediction service.
 *
 * A PredictionServer wraps the engine stack behind the wire protocol:
 * each registered benchmark becomes a served *stream* — accelerator,
 * operating points, SimulationEngine, and the trained SlicePredictor,
 * content-addressed by the same design/predictor fingerprints the
 * JobCache keys on. Incoming Predict requests are answered through
 * SimulationEngine::prepare, so hot jobs come straight from the
 * process-global JobCache and cold ones run through
 * CompiledDesign::runBatch.
 *
 * Request flow: one reader thread per connection decodes frames and
 * enqueues Predict requests on its stream's *bounded* queue — a full
 * queue answers Busy (with a retry-after hint) instead of parking the
 * request, so overload is explicit backpressure rather than unbounded
 * memory. Dispatch is *sharded*: each of the N dispatcher shards owns
 * the disjoint set of streams whose fingerprint hashes to it
 * (streamKey % shards), with its own bounded queues, accumulation
 * window, wakeup, and telemetry — one hot benchmark can saturate its
 * shard without head-of-line-blocking streams on the others. Each
 * shard's dispatcher drains its queues in arrival order, applying a
 * small *accumulation window*: when it wakes with fewer than
 * maxBatchJobs pending it waits once, up to batchWindow, for more
 * requests to land, then takes everything queued. Requests whose
 * optional deadline expired while queued are answered with
 * DeadlineExceeded at that point — and only at that point, never once
 * simulation has started, so any reply that does carry values is
 * byte-deterministic. The rest is grouped by stream and run through
 * one prepare() call per chunk (over the shard's thread pool when
 * workers > 1). Batching, worker count, and shard count change only
 * latency and throughput, never bytes: prepare() is bit-deterministic
 * at any worker count, requests of one stream never leave its shard,
 * and arrival order is preserved within a stream, so a reply is
 * byte-identical however requests were coalesced or sharded.
 *
 * Telemetry: per-stream counters (requests, cache hits, in-batch
 * coalescing, fresh simulations, batches, occupancy, queue depth,
 * p50/p99 service time) are readable in-process and served over the
 * wire as a JSON document via the Stats request.
 */

#ifndef PREDVFS_SERVE_SERVER_HH
#define PREDVFS_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/transport.hh"
#include "sim/experiment.hh"
#include "sim/job_cache.hh"

namespace predvfs {
namespace serve {

/** Serving configuration. */
struct ServerOptions
{
    /** Worker threads for batch simulation (1 = serial), per shard.
     *  Replies are bit-identical at any value. */
    unsigned workers = 1;

    /**
     * Dispatcher shards. Streams are assigned by fingerprint hash
     * (streamKey % shards), so the split is stable across restarts of
     * the same designs/predictors; each shard runs its own dispatcher
     * thread, queues, and accumulation window. Replies are
     * byte-identical at any shard count — sharding only removes
     * cross-stream head-of-line blocking.
     */
    unsigned shards = 1;

    /** Accumulation cap: a drained batch never exceeds this many
     *  jobs per stream. */
    std::size_t maxBatchJobs = 64;

    /** How long the dispatcher waits for a batch to fill before
     *  draining what it has. 0 = drain immediately. */
    unsigned batchWindowMicros = 200;

    /**
     * Bound on each stream's pending-request queue. A Predict that
     * arrives with the stream's queue full is answered immediately
     * with a Busy error (carrying a retry-after hint) instead of
     * being parked — overload degrades into explicit backpressure,
     * never into unbounded memory. The default is far above what the
     * in-tree workloads queue, so only deployments (or the overload
     * tests) that set it see Busy.
     */
    std::size_t queueBound = 1024;

    /**
     * When non-empty, stop() flushes the JobCache to this path so a
     * drained server leaves a warm start behind. Loading at startup
     * is the operator's call (PredictionServer::loadSnapshot), since
     * benchmarks must be registered first for the fingerprint filter.
     */
    std::string snapshotPath;

    /** Flow/platform settings used when registering benchmarks; the
     *  replay harness must use equal settings on its in-process
     *  Experiment for responses to be comparable. */
    sim::ExperimentOptions experiment;
};

/**
 * ServerOptions overridden by PREDVFS_SERVE_WORKERS,
 * PREDVFS_SERVE_SHARDS, PREDVFS_SERVE_MAX_BATCH,
 * PREDVFS_SERVE_WINDOW_US, PREDVFS_SERVE_QUEUE, and PREDVFS_SNAPSHOT
 * (all parsed with the hardened env helpers: malformed values warn
 * and keep @p base's setting).
 */
ServerOptions serverOptionsFromEnv(ServerOptions base = {});

/** Snapshot of one stream's serving counters. */
struct StreamTelemetry
{
    std::string benchmark;
    unsigned shard = 0;            //!< Dispatcher shard owning it.
    std::uint64_t requests = 0;    //!< Every accepted Predict; the
                                   //!< identity requests == cacheHits
                                   //!< + coalesced + simulated + busy
                                   //!< + expired holds once all of a
                                   //!< burst's replies are out.
    std::uint64_t cacheHits = 0;   //!< Answered from the JobCache.
    std::uint64_t coalesced = 0;   //!< In-batch duplicate fan-out.
    std::uint64_t simulated = 0;   //!< Fresh simulations.
    std::uint64_t busy = 0;        //!< Rejected: stream queue full.
    std::uint64_t expired = 0;     //!< Dropped: deadline passed while
                                   //!< queued.
    std::uint64_t batches = 0;     //!< prepare() calls issued.
    std::uint64_t batchJobs = 0;   //!< Sum of drained batch sizes.
    std::size_t peakQueueDepth = 0;  //!< This stream's deepest queue.
    double p50ServiceMicros = 0.0;
    double p99ServiceMicros = 0.0;

    /** Requests answered without fresh simulation / requests. */
    double hitRate() const;

    /** Mean jobs per drained batch (batch lane occupancy). */
    double meanBatchOccupancy() const;
};

/**
 * Snapshot of one dispatcher shard: its queue gauges plus the sum of
 * its streams' counters. The telemetry identity (requests ==
 * cacheHits + coalesced + simulated + busy + expired) holds per shard
 * exactly as it does per stream and in aggregate, because a stream's
 * requests never leave its shard.
 */
struct ShardTelemetry
{
    unsigned index = 0;
    std::size_t streams = 0;         //!< Streams hashed to this shard.
    std::size_t peakQueueDepth = 0;  //!< Peak pending across them.
    std::uint64_t drains = 0;        //!< Dispatcher sweeps with work.
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t simulated = 0;
    std::uint64_t busy = 0;
    std::uint64_t expired = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchJobs = 0;

    /** Mean jobs per drained batch on this shard. */
    double meanBatchOccupancy() const;
};

/** The serving process: registered streams + transports + dispatcher. */
class PredictionServer
{
  public:
    explicit PredictionServer(ServerOptions options = {});
    ~PredictionServer();

    PredictionServer(const PredictionServer &) = delete;
    PredictionServer &operator=(const PredictionServer &) = delete;

    /**
     * Train and register one benchmark for serving (offline flow +
     * engine construction; expensive). Idempotent per name.
     * @return the stream id clients address it by.
     */
    std::uint32_t registerBenchmark(const std::string &name);

    /**
     * Open an in-process loopback connection served by its own reader
     * thread; the returned endpoint is the client side.
     */
    std::unique_ptr<Connection> connectLoopback();

    /** Serve a Unix-domain socket at @p path (accept loop thread). */
    void listenUnix(const std::string &path);

    /**
     * Serve @p address, dispatching on its scheme ("tcp://host:port"
     * or a Unix socket path) via makeListener(). @return the concrete
     * bound address — for "tcp://host:0" it carries the
     * kernel-assigned port, so callers can hand it to clients.
     */
    std::string listen(const std::string &address);

    /**
     * Stop: close the listener and every connection, join all
     * threads, drain the queue (pending requests get ShuttingDown
     * errors). Called by the destructor; idempotent.
     */
    void stop();

    /** @name In-process introspection (tests, goldens, benches) */
    /// @{
    const ServerOptions &options() const { return opts; }
    std::vector<std::string> streamNames() const;
    StreamTelemetry telemetry(const std::string &benchmark) const;
    std::uint64_t streamKeyOf(const std::string &benchmark) const;

    /** Per-shard gauges + counter sums, indexed by shard. */
    std::vector<ShardTelemetry> shardTelemetry() const;

    /** Peak pending depth of the deepest shard since construction. */
    std::size_t maxQueueDepth() const;

    /** The full telemetry document (same JSON the Stats reply ships). */
    std::string telemetryJson() const;
    /// @}

    /** @name Cache persistence (crash-safe warm restarts) */
    /// @{
    /**
     * Flush the process-global JobCache to @p path via
     * JobCache::saveSnapshotFile (atomic rename, checksummed).
     * Callable at any time, including while serving.
     */
    bool saveSnapshot(const std::string &path) const;

    /**
     * Seed the JobCache from a snapshot, accepting only entries whose
     * stream key matches a benchmark registered on this server —
     * stale designs and retrained predictors are rejected entry by
     * entry, and a torn or corrupt file degrades to a cold start,
     * never a crash. Register benchmarks first.
     */
    sim::JobCache::SnapshotLoadStats
    loadSnapshot(const std::string &path);
    /// @}

  private:
    struct Impl;
    ServerOptions opts;
    std::unique_ptr<Impl> impl;
};

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_SERVER_HH
