/**
 * @file
 * Client side of the prediction service.
 *
 * A PredictionClient owns one Connection and speaks the wire protocol
 * synchronously: the constructor performs the Hello handshake,
 * openStream() resolves a benchmark name to a stream handle, and
 * predict()/predictMany() exchange jobs for prepared-value replies.
 * predictMany() pipelines — every request is written before the first
 * reply is read — which is what lets the server's accumulation window
 * actually coalesce a client's burst into one batch. Replies are
 * matched to requests by the echoed requestId, so any server-side
 * reordering across streams is invisible to the caller.
 *
 * Server-reported Error frames are fatal() here: the tests drive the
 * client with known-good requests, so a typed error means a harness
 * bug, not an expected outcome. The robustness corpus talks to the
 * server through raw Connections instead of this class.
 */

#ifndef PREDVFS_SERVE_CLIENT_HH
#define PREDVFS_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/transport.hh"

namespace predvfs {
namespace serve {

/** Synchronous protocol client over one Connection. */
class PredictionClient
{
  public:
    /** Take ownership of @p connection and handshake. fatal() when
     *  the peer is not a compatible prediction server. */
    explicit PredictionClient(std::unique_ptr<Connection> connection);

    /** Sends Bye (best effort) and closes the connection. */
    ~PredictionClient();

    PredictionClient(const PredictionClient &) = delete;
    PredictionClient &operator=(const PredictionClient &) = delete;

    /**
     * Resolve @p benchmark to a served stream. fatal() when the
     * server does not serve it.
     * @return the stream id for predict() calls.
     */
    std::uint32_t openStream(const std::string &benchmark);

    /** Content-addressed key the server reported for an open stream
     *  (design hash ⊕ predictor fingerprint). */
    std::uint64_t streamKey(std::uint32_t stream_id) const;

    /** One job in, one prepared record out. */
    PredictReplyMsg predict(std::uint32_t stream_id,
                            const rtl::JobInput &job);

    /**
     * Pipelined burst: write every request, then collect replies,
     * matched by requestId. @return replies in @p jobs order.
     */
    std::vector<PredictReplyMsg>
    predictMany(std::uint32_t stream_id,
                const std::vector<rtl::JobInput> &jobs);

    /** Fetch the server's telemetry JSON document. */
    std::string statsJson();

    /** Send Bye and close. Idempotent; the destructor calls it. */
    void bye();

  private:
    /** Block until one complete frame arrives. fatal() on EOF or
     *  framing garbage from the server (never expected in-process). */
    Frame readFrame();

    void send(MsgType type, const std::vector<std::uint8_t> &payload);

    /** fatal() with the server's message if @p frame is an Error. */
    static void raiseIfError(const Frame &frame);

    std::unique_ptr<Connection> conn;
    FrameDecoder decoder;
    std::uint64_t nextRequestId = 1;
    std::map<std::uint32_t, std::uint64_t> streamKeys;
    bool closed = false;
};

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_CLIENT_HH
