/**
 * @file
 * Client side of the prediction service.
 *
 * A PredictionClient owns one Connection and speaks the wire protocol
 * synchronously: the constructor performs the Hello handshake,
 * openStream() resolves a benchmark name to a stream handle, and
 * predict()/predictMany() exchange jobs for prepared-value replies.
 * predictMany() pipelines — every request is written before the first
 * reply is read — which is what lets the server's accumulation window
 * actually coalesce a client's burst into one batch. Replies are
 * matched to requests by the echoed requestId, so any server-side
 * reordering across streams is invisible to the caller.
 *
 * Fault tolerance is opt-in via RetryOptions. A client with retries
 * enabled absorbs the server's explicit backpressure: Busy replies
 * park the request for a capped exponential backoff (seeded,
 * deterministic jitter; the server's retry-after hint sets the floor)
 * and re-send it under the *same* requestId — the in-flight table
 * keyed by requestId makes re-sends idempotent at the client, so a
 * reply that races a retry is delivered once and the duplicate is
 * counted, not surfaced. With a connect factory configured, a dropped
 * connection (mid-frame EOF, ShuttingDown) is re-dialled, streams are
 * re-opened by name, and every unanswered request is re-sent; the
 * server's byte-determinism guarantees a re-executed request returns
 * the identical reply. Without RetryOptions the legacy behaviour
 * stands: any Error frame or disconnect is fatal(), which is what the
 * known-good test harnesses want.
 */

#ifndef PREDVFS_SERVE_CLIENT_HH
#define PREDVFS_SERVE_CLIENT_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hh"
#include "serve/transport.hh"
#include "util/random.hh"

namespace predvfs {
namespace serve {

/** Retry/backoff policy; default-constructed = no fault tolerance. */
struct RetryOptions
{
    /** Enable Busy/deadline handling and (with a factory) reconnect. */
    bool enabled = false;

    /** Consecutive sends of one request that vanish *with no reply
     *  at all* before giving up (fatal). A livelock detector, not a
     *  contention bound: a `Busy` reply is the server answering this
     *  very request (legitimate overload — competing bursts can
     *  starve a request on a small queue for arbitrarily many
     *  rounds), so it resets the count, as does any burst progress
     *  since the slot's last send. Only connection-loss re-sends
     *  accumulate. Callers wanting bounded waiting under overload
     *  use deadlines, not this knob. */
    unsigned maxAttempts = 32;

    /** Retry-enabled clients ship a burst in windows of at most this
     *  many in-flight requests instead of writing the whole backlog
     *  at once. Over a lossy transport an all-or-nothing round is
     *  pathological — one mid-round sever voids every frame written,
     *  so the chance of completing a round shrinks exponentially
     *  with burst size. Windowing banks progress every window, at
     *  the cost of lower server batch occupancy; clients without a
     *  retry policy keep whole-burst pipelining. */
    std::size_t maxInflight = 16;

    /** First backoff after a Busy round; doubles each consecutive
     *  round, capped at maxBackoffMicros. The server's retry-after
     *  hint raises (never lowers) the wait. */
    std::uint64_t baseBackoffMicros = 200;
    std::uint64_t maxBackoffMicros = 20000;

    /** Seed for the backoff jitter (uniform in [0.5, 1.0] of the
     *  computed delay) — reruns sleep the same schedule. */
    std::uint64_t jitterSeed = 1;

    /** When set, a lost connection is re-dialled through this factory
     *  (fresh handshake, streams re-opened by name, unanswered
     *  requests re-sent). Without it, disconnects stay fatal. */
    std::function<std::unique_ptr<Connection>()> connect;

    /** Dial attempts per reconnect (each failed dial backs off like a
     *  Busy round) before giving up (fatal). */
    unsigned reconnectAttempts = 8;
};

/** Client-side fault counters (see statsJson()). */
struct ClientStats
{
    std::uint64_t requestsSent = 0;     //!< Predict frames written,
                                        //!< re-sends included.
    std::uint64_t busyReplies = 0;      //!< Busy errors received.
    std::uint64_t retries = 0;          //!< Requests re-sent.
    std::uint64_t backoffSleeps = 0;    //!< Backoff waits taken.
    std::uint64_t reconnects = 0;       //!< Successful re-dials.
    std::uint64_t deadlineExpired = 0;  //!< DeadlineExceeded replies.
    std::uint64_t duplicateReplies = 0; //!< Replies dropped by the
                                        //!< in-flight table.
};

/** Terminal result of one request: a reply, or a typed error the
 *  retry policy does not absorb (today: DeadlineExceeded). */
struct PredictOutcome
{
    bool ok = false;
    PredictReplyMsg reply;              //!< Valid when ok.
    ErrorCode error = ErrorCode::BadFrame;  //!< Valid when !ok.
};

/** Synchronous protocol client over one Connection. */
class PredictionClient
{
  public:
    /** Take ownership of @p connection and handshake. fatal() when
     *  the peer is not a compatible prediction server. */
    explicit PredictionClient(std::unique_ptr<Connection> connection);

    /** As above, with a retry policy. */
    PredictionClient(std::unique_ptr<Connection> connection,
                     RetryOptions retry);

    /** Dial through @p retry.connect (required), retrying failed
     *  handshakes under the reconnect policy — the entry point for
     *  transports that can fail mid-handshake. */
    explicit PredictionClient(RetryOptions retry);

    /** Sends Bye (best effort) and closes the connection. */
    ~PredictionClient();

    PredictionClient(const PredictionClient &) = delete;
    PredictionClient &operator=(const PredictionClient &) = delete;

    /**
     * Resolve @p benchmark to a served stream. fatal() when the
     * server does not serve it.
     * @return the stream id for predict() calls.
     */
    std::uint32_t openStream(const std::string &benchmark);

    /** Content-addressed key the server reported for an open stream
     *  (design hash ⊕ predictor fingerprint). */
    std::uint64_t streamKey(std::uint32_t stream_id) const;

    /** One job in, one prepared record out. */
    PredictReplyMsg predict(std::uint32_t stream_id,
                            const rtl::JobInput &job);

    /**
     * Pipelined burst: write every request, then collect replies,
     * matched by requestId. Retriable faults (Busy, disconnect with a
     * factory) are absorbed; any other error is fatal().
     * @return replies in @p jobs order.
     */
    std::vector<PredictReplyMsg>
    predictMany(std::uint32_t stream_id,
                const std::vector<rtl::JobInput> &jobs);

    /**
     * predictMany() that reports per-request outcomes instead of
     * insisting on success. @p deadline_micros (0 = none) rides on
     * every request; a request the server expires while queued comes
     * back as a DeadlineExceeded outcome rather than a fatal().
     * @return outcomes in @p jobs order — every job gets exactly one.
     */
    std::vector<PredictOutcome>
    predictManyOutcomes(std::uint32_t stream_id,
                        const std::vector<rtl::JobInput> &jobs,
                        std::uint64_t deadline_micros = 0);

    /** This client's fault counters. */
    const ClientStats &stats() const { return counters; }

    /**
     * Telemetry document: a "client" object with this client's
     * retry/busy/deadline counters, plus the server's full report
     * under "server_report".
     */
    std::string statsJson();

    /** Send Bye and close. Idempotent; the destructor calls it. */
    void bye();

  private:
    enum class ReadStatus { Ok, Lost };

    /** Block until one complete frame arrives, reporting a lost
     *  connection (EOF or framing garbage) instead of dying — the
     *  caller decides whether loss is survivable. */
    ReadStatus tryReadFrame(Frame &out);

    bool trySend(MsgType type,
                 const std::vector<std::uint8_t> &payload);

    /** Hello exchange on the current connection. */
    bool tryHandshake();

    /** Re-dial, re-handshake, re-open streams. fatal() when no
     *  factory is configured or attempts run out. */
    void reconnect();

    /** Jittered, capped exponential backoff for round @p round. */
    void backoff(unsigned round, std::uint64_t floor_micros);

    /** The server-side id currently backing a caller-visible id. */
    std::uint32_t activeId(std::uint32_t stream_id) const;

    std::uint32_t openStreamRaw(const std::string &benchmark);

    /** fatal() with the server's message if @p frame is an Error. */
    static void raiseIfError(const Frame &frame);

    std::unique_ptr<Connection> conn;
    FrameDecoder decoder;
    RetryOptions retry;
    ClientStats counters;
    util::Rng jitter;
    std::uint64_t nextRequestId = 1;
    std::map<std::uint32_t, std::uint64_t> streamKeys;
    std::map<std::uint32_t, std::string> streamBench;
    /** Caller-visible stream id → id on the current connection
     *  (identity until a reconnect re-opens streams). */
    std::map<std::uint32_t, std::uint32_t> remap;
    bool closed = false;
};

/**
 * Asynchronous pipelined protocol client.
 *
 * Where PredictionClient ships a burst and then collects it,
 * AsyncPredictionClient ships each request the moment submit() is
 * called and delivers its typed outcome through a completion
 * callback — the producer never waits for the consumer. Internally a
 * *sender* thread drains the submit queue onto the wire and a
 * *receiver* thread matches replies through the same requestId
 * in-flight table the synchronous client uses, so the fault handling
 * is identical in kind: Busy re-queues the request with a seeded,
 * capped exponential backoff (the server's retry-after hint sets the
 * floor); DeadlineExceeded is terminal; a lost connection re-dials
 * through the RetryOptions factory, re-opens streams by name, remaps
 * ids, and re-sends everything unanswered under its original
 * requestId, which keeps re-sends idempotent and duplicate replies
 * countable.
 *
 * Request state machine: Queued → Sent → Done. Busy moves Sent back
 * to Queued (with a not-before time); connection loss moves every
 * Sent back to Queued; completion removes the slot and fires the
 * callback exactly once.
 *
 * Ordering: callbacks may run in any order relative to submission —
 * the server answers expired deadlines before simulated values, and
 * retries reshuffle the wire order. Aggregate by requestId, never by
 * arrival order. Callbacks run on the receiver thread: keep them
 * short, and do not call submit()/drain()/close() from inside one
 * (stats() and streamKey() are safe).
 *
 * Usage contract: open every stream before the first submit();
 * drain() blocks until no request is outstanding; close() completes
 * anything still unanswered with a ShuttingDown outcome.
 */
class AsyncPredictionClient
{
  public:
    /** Completion callback: the id submit() returned plus the
     *  request's terminal outcome. */
    using Callback =
        std::function<void(std::uint64_t, const PredictOutcome &)>;

    /** Take ownership of @p connection and handshake. fatal() when
     *  the peer is not a compatible prediction server. */
    explicit AsyncPredictionClient(
        std::unique_ptr<Connection> connection, RetryOptions retry = {});

    /** Dial through @p retry.connect (required), retrying failed
     *  handshakes under the reconnect policy. */
    explicit AsyncPredictionClient(RetryOptions retry);

    /** close(): outstanding requests get ShuttingDown outcomes. */
    ~AsyncPredictionClient();

    AsyncPredictionClient(const AsyncPredictionClient &) = delete;
    AsyncPredictionClient &
    operator=(const AsyncPredictionClient &) = delete;

    /**
     * Resolve @p benchmark to a served stream. Must be called before
     * the first submit() — stream setup is synchronous, submission is
     * not, and the two do not interleave on one connection.
     */
    std::uint32_t openStream(const std::string &benchmark);

    /** Content-addressed key the server reported for an open stream. */
    std::uint64_t streamKey(std::uint32_t stream_id) const;

    /**
     * Queue one job and return immediately; @p done fires exactly
     * once with the terminal outcome. @p deadline_micros (0 = none)
     * rides on the request like the synchronous client's.
     * @return the requestId @p done will be called with.
     */
    std::uint64_t submit(std::uint32_t stream_id,
                         const rtl::JobInput &job, Callback done,
                         std::uint64_t deadline_micros = 0);

    /** Block until every submitted request has completed and its
     *  callback has returned. */
    void drain();

    /**
     * Stop both threads, close the connection, and complete every
     * still-outstanding request with a ShuttingDown outcome (on the
     * calling thread). Idempotent; the destructor calls it.
     */
    void close();

    /** This client's fault counters (racy snapshot while running). */
    ClientStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** One submitted request, keyed by requestId in `inflight`. */
    struct Slot
    {
        std::uint32_t streamId = 0;
        rtl::JobInput job;
        std::uint64_t deadlineMicros = 0;
        Callback done;
        bool sent = false;           //!< Sent (true) vs Queued.
        bool everSent = false;
        Clock::time_point readyAt{};     //!< Busy backoff gate.
        unsigned unanswered = 0;
        std::uint64_t completedAtSend = 0;
    };

    void startThreads();
    void senderLoop();
    void receiverLoop();

    /** Dispatch one server frame; @return false to stop receiving. */
    bool handleFrame(const Frame &frame);

    /** Retire a slot and run its callback (outside the lock). */
    void complete(std::uint64_t request_id,
                  const PredictOutcome &outcome);

    /** Receiver-side: requeue Sent slots, re-dial, re-handshake,
     *  re-open streams, bump the generation the sender waits on.
     *  @return false when close() interrupted it. */
    bool handleConnectionLost();

    /** @name Synchronous helpers (constructor/openStream/reconnect —
     *  contexts where this thread owns the connection). */
    /// @{
    bool syncHandshake();
    std::uint32_t syncOpenStream(const std::string &benchmark);
    bool syncReadFrame(Frame &out);
    bool sendRaw(MsgType type, const std::vector<std::uint8_t> &payload);
    /// @}

    /** Jittered, capped backoff duration for round @p round; counts a
     *  backoff sleep. Call with mu held. */
    std::uint64_t backoffMicros(unsigned round,
                                std::uint64_t floor_micros);
    void sleepBackoff(unsigned round, std::uint64_t floor_micros);

    std::unique_ptr<Connection> conn;  //!< Swapped only by reconnect.
    FrameDecoder decoder;              //!< Owned by the receiver.
    RetryOptions retry;
    std::mutex writeMu;                //!< Serialises wire writes.

    mutable std::mutex mu;             //!< Guards everything below.
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Slot> inflight;
    std::deque<std::uint64_t> sendQueue;  //!< Queued requestIds.
    ClientStats counters;
    util::Rng jitter;
    std::uint64_t nextRequestId = 1;
    std::uint64_t completedCount = 0;
    unsigned busyRound = 0;
    std::uint64_t busyFloor = 0;
    std::size_t dispatching = 0;  //!< Callbacks currently running.
    std::uint64_t generation = 0; //!< Bumped per successful reconnect.
    bool threadsStarted = false;
    bool closing = false;
    bool reconnecting = false;    //!< Receiver owns the connection.
    bool senderInSend = false;    //!< Sender is inside writeAll().

    std::map<std::uint32_t, std::uint64_t> streamKeys;
    std::map<std::uint32_t, std::string> streamBench;
    std::map<std::uint32_t, std::uint32_t> remap;

    std::thread sender;
    std::thread receiver;
};

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_CLIENT_HH
