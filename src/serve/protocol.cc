#include "serve/protocol.hh"

#include <cstring>

#include "util/logging.hh"

namespace predvfs {
namespace serve {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadMagic: return "bad magic";
      case ErrorCode::BadVersion: return "bad version";
      case ErrorCode::BadFrame: return "bad frame";
      case ErrorCode::UnknownType: return "unknown type";
      case ErrorCode::UnknownBenchmark: return "unknown benchmark";
      case ErrorCode::UnknownStream: return "unknown stream";
      case ErrorCode::Oversized: return "oversized frame";
      case ErrorCode::ShuttingDown: return "shutting down";
      case ErrorCode::Busy: return "busy";
      case ErrorCode::DeadlineExceeded: return "deadline exceeded";
    }
    return "?";
}

namespace {

/** Append-only little-endian field writer. */
struct WireWriter
{
    std::vector<std::uint8_t> bytes;

    void u8(std::uint8_t v) { bytes.push_back(v); }

    void u16(std::uint16_t v)
    {
        bytes.push_back(static_cast<std::uint8_t>(v));
        bytes.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v)
    {
        // Bit pattern, not a decimal rendering: replies must byte-equal
        // the server's in-memory doubles.
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes.insert(bytes.end(), s.begin(), s.end());
    }
};

/**
 * Bounds-checked little-endian field reader. Any read past the end
 * sets the failed flag and returns a zero value; callers check ok()
 * (and done(), to reject trailing bytes) once at the end instead of
 * after every field.
 */
struct WireReader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;
    bool failed = false;

    explicit WireReader(const std::vector<std::uint8_t> &payload)
        : data(payload.data()), size(payload.size())
    {
    }

    bool take(std::size_t n)
    {
        if (failed || size - pos < n || pos > size) {
            failed = true;
            return false;
        }
        return true;
    }

    std::uint16_t u16()
    {
        if (!take(2))
            return 0;
        std::uint16_t v = static_cast<std::uint16_t>(
            data[pos] | (data[pos + 1] << 8));
        pos += 2;
        return v;
    }

    std::uint32_t u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::uint32_t n = u32();
        if (!take(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }

    bool ok() const { return !failed; }
    bool done() const { return !failed && pos == size; }
};

} // namespace

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &payload)
{
    util::fatalIf(payload.size() > kMaxFramePayload,
                  "serve: frame payload of ", payload.size(),
                  " bytes exceeds the ", kMaxFramePayload,
                  "-byte protocol limit");
    WireWriter w;
    w.bytes.reserve(8 + payload.size());
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u16(static_cast<std::uint16_t>(type));
    w.u16(0);  // reserved
    w.bytes.insert(w.bytes.end(), payload.begin(), payload.end());
    return std::move(w.bytes);
}

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    WireWriter w;
    w.u32(msg.magic);
    w.u16(msg.version);
    return std::move(w.bytes);
}

bool
decodeHello(const std::vector<std::uint8_t> &payload, HelloMsg &out)
{
    WireReader r(payload);
    out.magic = r.u32();
    out.version = r.u16();
    return r.done();
}

std::vector<std::uint8_t>
encodeOpenStream(const OpenStreamMsg &msg)
{
    WireWriter w;
    w.str(msg.benchmark);
    return std::move(w.bytes);
}

bool
decodeOpenStream(const std::vector<std::uint8_t> &payload,
                 OpenStreamMsg &out)
{
    WireReader r(payload);
    out.benchmark = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeStreamOpened(const StreamOpenedMsg &msg)
{
    WireWriter w;
    w.u32(msg.streamId);
    w.u64(msg.streamKey);
    return std::move(w.bytes);
}

bool
decodeStreamOpened(const std::vector<std::uint8_t> &payload,
                   StreamOpenedMsg &out)
{
    WireReader r(payload);
    out.streamId = r.u32();
    out.streamKey = r.u64();
    return r.done();
}

std::vector<std::uint8_t>
encodePredict(const PredictMsg &msg)
{
    WireWriter w;
    w.u32(msg.streamId);
    w.u64(msg.requestId);
    w.u64(msg.deadlineMicros);
    w.u32(static_cast<std::uint32_t>(msg.job.items.size()));
    for (const rtl::WorkItem &item : msg.job.items) {
        w.u32(static_cast<std::uint32_t>(item.fields.size()));
        for (const std::int64_t f : item.fields)
            w.i64(f);
    }
    return std::move(w.bytes);
}

bool
decodePredict(const std::vector<std::uint8_t> &payload, PredictMsg &out)
{
    WireReader r(payload);
    out.streamId = r.u32();
    out.requestId = r.u64();
    out.deadlineMicros = r.u64();
    const std::uint32_t items = r.u32();
    // Counts are attacker-controlled: never reserve() from them beyond
    // what the remaining payload could actually hold (4 bytes per item
    // minimum), so a forged count of 2^32 cannot drive allocation.
    out.job.items.clear();
    out.job.items.reserve(
        std::min<std::size_t>(items, payload.size() / 4 + 1));
    for (std::uint32_t i = 0; i < items && r.ok(); ++i) {
        rtl::WorkItem item;
        const std::uint32_t fields = r.u32();
        item.fields.reserve(
            std::min<std::size_t>(fields, payload.size() / 8 + 1));
        for (std::uint32_t f = 0; f < fields && r.ok(); ++f)
            item.fields.push_back(r.i64());
        out.job.items.push_back(std::move(item));
    }
    return r.done();
}

std::vector<std::uint8_t>
encodePredictReply(const PredictReplyMsg &msg)
{
    WireWriter w;
    w.u64(msg.requestId);
    w.u64(msg.cycles);
    w.f64(msg.energyUnits);
    w.u64(msg.sliceCycles);
    w.f64(msg.sliceEnergyUnits);
    w.f64(msg.predictedCycles);
    return std::move(w.bytes);
}

bool
decodePredictReply(const std::vector<std::uint8_t> &payload,
                   PredictReplyMsg &out)
{
    WireReader r(payload);
    out.requestId = r.u64();
    out.cycles = r.u64();
    out.energyUnits = r.f64();
    out.sliceCycles = r.u64();
    out.sliceEnergyUnits = r.f64();
    out.predictedCycles = r.f64();
    return r.done();
}

std::vector<std::uint8_t>
encodeStats(const StatsMsg &msg)
{
    WireWriter w;
    w.u32(msg.streamId);
    return std::move(w.bytes);
}

bool
decodeStats(const std::vector<std::uint8_t> &payload, StatsMsg &out)
{
    WireReader r(payload);
    out.streamId = r.u32();
    return r.done();
}

std::vector<std::uint8_t>
encodeStatsReply(const StatsReplyMsg &msg)
{
    WireWriter w;
    w.str(msg.json);
    return std::move(w.bytes);
}

bool
decodeStatsReply(const std::vector<std::uint8_t> &payload,
                 StatsReplyMsg &out)
{
    WireReader r(payload);
    out.json = r.str();
    return r.done();
}

std::vector<std::uint8_t>
encodeError(const ErrorMsg &msg)
{
    WireWriter w;
    w.u32(msg.code);
    w.u64(msg.requestId);
    w.u64(msg.retryAfterMicros);
    w.str(msg.message);
    return std::move(w.bytes);
}

bool
decodeError(const std::vector<std::uint8_t> &payload, ErrorMsg &out)
{
    WireReader r(payload);
    out.code = r.u32();
    out.requestId = r.u64();
    out.retryAfterMicros = r.u64();
    out.message = r.str();
    return r.done();
}

void
FrameDecoder::feed(const void *data, std::size_t n)
{
    if (failed)
        return;  // Framing is lost; discard everything further.
    const auto *p = static_cast<const std::uint8_t *>(data);
    buffer.insert(buffer.end(), p, p + n);
}

FrameDecoder::Status
FrameDecoder::next(Frame &out, std::string *error)
{
    if (failed) {
        if (error)
            *error = failReason;
        return Status::Error;
    }

    // Compact lazily: drop consumed bytes only when they dominate the
    // buffer, so a long-lived connection does not grow unboundedly and
    // steady-state parsing does not memmove per frame.
    if (consumed > 4096 && consumed * 2 > buffer.size()) {
        buffer.erase(buffer.begin(),
                     buffer.begin() +
                         static_cast<std::ptrdiff_t>(consumed));
        consumed = 0;
    }

    const std::size_t avail = buffer.size() - consumed;
    if (avail < 8)
        return Status::NeedMore;

    const std::uint8_t *h = buffer.data() + consumed;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(h[i]) << (8 * i);
    const std::uint16_t type =
        static_cast<std::uint16_t>(h[4] | (h[5] << 8));
    const std::uint16_t reserved =
        static_cast<std::uint16_t>(h[6] | (h[7] << 8));

    if (reserved != 0) {
        failed = true;
        failReason = "nonzero reserved field (garbage or misaligned "
                     "stream)";
        if (error)
            *error = failReason;
        return Status::Error;
    }
    if (len > kMaxFramePayload) {
        failed = true;
        failReason = "announced payload of " + std::to_string(len) +
            " bytes exceeds the protocol limit";
        if (error)
            *error = failReason;
        return Status::Error;
    }
    if (avail < 8 + static_cast<std::size_t>(len))
        return Status::NeedMore;

    out.type = type;
    out.payload.assign(h + 8, h + 8 + len);
    consumed += 8 + static_cast<std::size_t>(len);
    if (consumed == buffer.size()) {
        buffer.clear();
        consumed = 0;
    }
    return Status::Ready;
}

} // namespace serve
} // namespace predvfs
