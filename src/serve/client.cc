#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "util/logging.hh"

namespace predvfs {
namespace serve {

PredictionClient::PredictionClient(
    std::unique_ptr<Connection> connection)
    : PredictionClient(std::move(connection), RetryOptions{})
{
}

PredictionClient::PredictionClient(
    std::unique_ptr<Connection> connection, RetryOptions retry_)
    : conn(std::move(connection)), retry(std::move(retry_)),
      jitter(retry.jitterSeed)
{
    util::fatalIf(!conn, "PredictionClient: null connection");
    util::fatalIf(!tryHandshake(),
                  "PredictionClient: handshake failed (peer closed "
                  "or sent garbage)");
}

PredictionClient::PredictionClient(RetryOptions retry_)
    : retry(std::move(retry_)), jitter(retry.jitterSeed)
{
    util::fatalIf(!retry.enabled || !retry.connect,
                  "PredictionClient: the dialling constructor needs "
                  "RetryOptions with a connect factory");
    for (unsigned attempt = 0; attempt < retry.reconnectAttempts;
         ++attempt) {
        conn = retry.connect();
        if (conn) {
            decoder = FrameDecoder{};
            if (tryHandshake())
                return;
        }
        backoff(attempt, 0);
    }
    util::fatal("PredictionClient: could not establish a connection "
                "in ", retry.reconnectAttempts, " attempts");
}

PredictionClient::~PredictionClient()
{
    bye();
}

bool
PredictionClient::tryHandshake()
{
    if (!trySend(MsgType::Hello, encodeHello(HelloMsg{})))
        return false;
    Frame reply;
    if (tryReadFrame(reply) != ReadStatus::Ok)
        return false;
    // A typed error here (BadVersion, BadMagic) is a configuration
    // mismatch, not a transient fault: no amount of redialling fixes
    // it, so it stays fatal even under a retry policy.
    raiseIfError(reply);
    util::fatalIf(static_cast<MsgType>(reply.type) != MsgType::HelloOk,
                  "PredictionClient: handshake got frame type ",
                  reply.type, " instead of HelloOk");
    return true;
}

std::uint32_t
PredictionClient::openStreamRaw(const std::string &benchmark)
{
    OpenStreamMsg open;
    open.benchmark = benchmark;
    if (!trySend(MsgType::OpenStream, encodeOpenStream(open)))
        return 0;
    Frame reply;
    if (tryReadFrame(reply) != ReadStatus::Ok)
        return 0;
    // UnknownBenchmark and friends are configuration errors — fatal
    // whatever the retry policy, like the handshake above.
    raiseIfError(reply);
    util::fatalIf(
        static_cast<MsgType>(reply.type) != MsgType::StreamOpened,
        "PredictionClient: OpenStream got frame type ", reply.type);
    StreamOpenedMsg opened;
    util::fatalIf(!decodeStreamOpened(reply.payload, opened),
                  "PredictionClient: undecodable StreamOpened");
    util::fatalIf(opened.streamId == 0,
                  "PredictionClient: server assigned stream id 0");
    streamKeys[opened.streamId] = opened.streamKey;
    return opened.streamId;
}

std::uint32_t
PredictionClient::openStream(const std::string &benchmark)
{
    for (;;) {
        const std::uint32_t id = openStreamRaw(benchmark);
        if (id != 0) {
            streamBench[id] = benchmark;
            remap[id] = id;
            return id;
        }
        // 0 = connection lost mid-open; reconnect() is fatal without
        // a factory, preserving the legacy behaviour.
        reconnect();
    }
}

std::uint64_t
PredictionClient::streamKey(std::uint32_t stream_id) const
{
    const auto it = streamKeys.find(stream_id);
    util::fatalIf(it == streamKeys.end(),
                  "PredictionClient: stream ", stream_id,
                  " was never opened");
    return it->second;
}

std::uint32_t
PredictionClient::activeId(std::uint32_t stream_id) const
{
    const auto it = remap.find(stream_id);
    util::fatalIf(it == remap.end(), "PredictionClient: stream ",
                  stream_id, " was never opened");
    return it->second;
}

void
PredictionClient::reconnect()
{
    util::fatalIf(!retry.enabled || !retry.connect,
                  "PredictionClient: connection lost (no reconnect "
                  "factory configured)");
    for (unsigned attempt = 0; attempt < retry.reconnectAttempts;
         ++attempt) {
        std::unique_ptr<Connection> fresh = retry.connect();
        if (!fresh) {
            backoff(attempt, 0);
            continue;
        }
        conn = std::move(fresh);
        decoder = FrameDecoder{};
        if (!tryHandshake()) {
            backoff(attempt, 0);
            continue;
        }
        // Re-open every stream the caller holds a handle to; ids may
        // differ on the new connection (another server instance), so
        // the remap table translates at send time.
        bool opened_all = true;
        for (const auto &entry : streamBench) {
            const std::uint32_t fresh_id =
                openStreamRaw(entry.second);
            if (fresh_id == 0) {
                opened_all = false;
                break;
            }
            remap[entry.first] = fresh_id;
        }
        if (!opened_all) {
            backoff(attempt, 0);
            continue;
        }
        ++counters.reconnects;
        return;
    }
    util::fatal("PredictionClient: reconnect failed after ",
                retry.reconnectAttempts, " attempts");
}

void
PredictionClient::backoff(unsigned round, std::uint64_t floor_micros)
{
    std::uint64_t wait = retry.baseBackoffMicros
        << std::min(round, 20u);
    wait = std::min(wait, retry.maxBackoffMicros);
    // Jitter desynchronises retrying clients without giving up
    // reproducibility: the schedule is a pure function of jitterSeed.
    wait = static_cast<std::uint64_t>(
        static_cast<double>(wait) * (0.5 + 0.5 * jitter.uniform()));
    wait = std::max(wait, floor_micros);
    ++counters.backoffSleeps;
    if (wait > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(wait));
}

PredictReplyMsg
PredictionClient::predict(std::uint32_t stream_id,
                          const rtl::JobInput &job)
{
    std::vector<rtl::JobInput> jobs(1, job);
    return predictMany(stream_id, jobs).front();
}

std::vector<PredictReplyMsg>
PredictionClient::predictMany(std::uint32_t stream_id,
                              const std::vector<rtl::JobInput> &jobs)
{
    const std::vector<PredictOutcome> outcomes =
        predictManyOutcomes(stream_id, jobs, 0);
    std::vector<PredictReplyMsg> replies;
    replies.reserve(outcomes.size());
    for (const PredictOutcome &outcome : outcomes) {
        util::fatalIf(!outcome.ok,
                      "PredictionClient: request failed with ",
                      errorCodeName(outcome.error),
                      " (predictMany expects every job answered; use "
                      "predictManyOutcomes for deadline workloads)");
        replies.push_back(outcome.reply);
    }
    return replies;
}

std::vector<PredictOutcome>
PredictionClient::predictManyOutcomes(
    std::uint32_t stream_id, const std::vector<rtl::JobInput> &jobs,
    std::uint64_t deadline_micros)
{
    enum class State { NeedSend, Sent, Done };
    struct Slot
    {
        std::uint64_t requestId = 0;
        const rtl::JobInput *job = nullptr;
        State state = State::NeedSend;
        bool parked = false;  //!< Waiting out a Busy before re-send.
        bool everSent = false;
        unsigned unanswered = 0;  //!< Consecutive sends with no reply.
        std::size_t doneAtSend = 0;  //!< Burst progress at last send.
        PredictOutcome outcome;
    };

    std::vector<Slot> slots(jobs.size());
    // The in-flight table: requestId → slot. A re-send reuses the
    // original requestId, so however many copies race, the first
    // reply lands in the slot and later ones are counted duplicates.
    std::unordered_map<std::uint64_t, std::size_t> inflight;
    inflight.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        slots[i].requestId = nextRequestId++;
        slots[i].job = &jobs[i];
        inflight[slots[i].requestId] = i;
    }

    std::size_t done = 0;
    const auto sendSlot = [&](Slot &slot) -> bool {
        // maxAttempts bounds *livelock*, not contention. A Busy reply
        // is the server answering this very request — legitimate
        // overload, resolved when competing bursts drain, so it
        // resets the count (below, where it's received). Only sends
        // that vanish with no reply at all (connection-loss re-sends)
        // accumulate, and any burst progress since this slot's last
        // send starts the count over too.
        if (slot.unanswered > 0 && done > slot.doneAtSend)
            slot.unanswered = 0;
        ++slot.unanswered;
        util::fatalIf(slot.unanswered > retry.maxAttempts,
                      "PredictionClient: request ", slot.requestId,
                      " re-sent ", retry.maxAttempts,
                      " times with no reply and no burst progress");
        if (slot.everSent)
            ++counters.retries;
        slot.everSent = true;
        slot.doneAtSend = done;
        PredictMsg request;
        request.streamId = activeId(stream_id);
        request.requestId = slot.requestId;
        request.deadlineMicros = deadline_micros;
        request.job = *slot.job;
        ++counters.requestsSent;
        return trySend(MsgType::Predict, encodePredict(request));
    };

    const auto onConnectionLost = [&] {
        // Whatever was written to the dead connection is gone (or its
        // reply is); it all goes back on the send list. Re-execution
        // is safe: the server's replies are byte-deterministic.
        for (Slot &slot : slots) {
            if (slot.state == State::Sent)
                slot.state = State::NeedSend;
        }
        reconnect();
    };

    unsigned busy_round = 0;
    std::uint64_t busy_floor = 0;
    while (done < slots.size()) {
        std::size_t sent_count = 0;
        bool unsent = false;
        bool any_parked = false;
        for (const Slot &slot : slots) {
            if (slot.state == State::Sent)
                ++sent_count;
            else if (slot.state == State::NeedSend) {
                unsent = true;
                any_parked |= slot.parked;
            }
        }

        if (unsent && sent_count == 0) {
            // Nothing in flight to wait on: ship the backlog. Busy-
            // parked requests wait out the backoff first — the queue
            // that bounced them needs a window to drain. With a retry
            // policy the round is capped at maxInflight so a sever
            // only voids one window, not the whole burst (see the
            // RetryOptions doc); plain clients pipeline everything.
            if (any_parked)
                backoff(busy_round++, busy_floor);
            const std::size_t window =
                retry.enabled && retry.maxInflight > 0
                ? retry.maxInflight
                : slots.size();
            std::size_t shipped = 0;
            bool lost = false;
            for (Slot &slot : slots) {
                if (slot.state != State::NeedSend)
                    continue;
                if (shipped >= window)
                    break;
                slot.parked = false;
                if (!sendSlot(slot)) {
                    lost = true;
                    break;
                }
                slot.state = State::Sent;
                ++shipped;
            }
            if (lost)
                onConnectionLost();
            continue;
        }

        Frame frame;
        if (tryReadFrame(frame) != ReadStatus::Ok) {
            onConnectionLost();
            continue;
        }

        if (static_cast<MsgType>(frame.type) == MsgType::PredictReply) {
            PredictReplyMsg reply;
            util::fatalIf(!decodePredictReply(frame.payload, reply),
                          "PredictionClient: undecodable "
                          "PredictReply");
            const auto it = inflight.find(reply.requestId);
            if (it == inflight.end() ||
                slots[it->second].state == State::Done) {
                util::fatalIf(!retry.enabled,
                              "PredictionClient: duplicate or unknown "
                              "reply for request ", reply.requestId);
                ++counters.duplicateReplies;
                continue;
            }
            Slot &slot = slots[it->second];
            slot.state = State::Done;
            slot.outcome.ok = true;
            slot.outcome.reply = reply;
            ++done;
            busy_round = 0;  // The server is accepting work again.
            continue;
        }

        if (static_cast<MsgType>(frame.type) == MsgType::Error) {
            ErrorMsg error;
            util::fatalIf(!decodeError(frame.payload, error),
                          "PredictionClient: undecodable Error frame");
            const ErrorCode code = static_cast<ErrorCode>(error.code);
            const auto it = inflight.find(error.requestId);
            Slot *slot = (it != inflight.end() &&
                          slots[it->second].state != State::Done)
                ? &slots[it->second]
                : nullptr;

            if (code == ErrorCode::Busy && slot) {
                util::fatalIf(!retry.enabled,
                              "PredictionClient: server busy and "
                              "retries are disabled (request ",
                              error.requestId, ")");
                ++counters.busyReplies;
                busy_floor = error.retryAfterMicros;
                slot->state = State::NeedSend;
                slot->parked = true;
                slot->unanswered = 0;  // Answered; the server lives.
                continue;
            }
            if (code == ErrorCode::DeadlineExceeded && slot) {
                // Terminal by design: the deadline was the caller's
                // promise that a late answer is worthless.
                ++counters.deadlineExpired;
                slot->state = State::Done;
                slot->outcome.ok = false;
                slot->outcome.error = code;
                ++done;
                continue;
            }
            if (code == ErrorCode::ShuttingDown && retry.enabled &&
                retry.connect) {
                // The connection is a dead end; everything still
                // unanswered moves to a fresh one.
                conn->close();
                onConnectionLost();
                continue;
            }
            raiseIfError(frame);  // Anything else is fatal.
            continue;
        }

        util::fatal("PredictionClient: expected PredictReply, got "
                    "type ", frame.type);
    }

    std::vector<PredictOutcome> outcomes;
    outcomes.reserve(slots.size());
    for (Slot &slot : slots)
        outcomes.push_back(std::move(slot.outcome));
    return outcomes;
}

std::string
PredictionClient::statsJson()
{
    std::string server_doc;
    for (;;) {
        if (trySend(MsgType::Stats, encodeStats(StatsMsg{}))) {
            Frame frame;
            if (tryReadFrame(frame) == ReadStatus::Ok) {
                raiseIfError(frame);
                util::fatalIf(static_cast<MsgType>(frame.type) !=
                                  MsgType::StatsReply,
                              "PredictionClient: expected StatsReply, "
                              "got type ", frame.type);
                StatsReplyMsg reply;
                util::fatalIf(
                    !decodeStatsReply(frame.payload, reply),
                    "PredictionClient: undecodable StatsReply");
                server_doc = std::move(reply.json);
                break;
            }
        }
        reconnect();  // Fatal without a factory — legacy behaviour.
    }

    std::ostringstream os;
    os << "{\n"
       << "  \"client\": {\n"
       << "    \"requests_sent\": " << counters.requestsSent << ",\n"
       << "    \"busy_replies\": " << counters.busyReplies << ",\n"
       << "    \"retries\": " << counters.retries << ",\n"
       << "    \"backoff_sleeps\": " << counters.backoffSleeps
       << ",\n"
       << "    \"reconnects\": " << counters.reconnects << ",\n"
       << "    \"deadline_expired\": " << counters.deadlineExpired
       << ",\n"
       << "    \"duplicate_replies\": " << counters.duplicateReplies
       << "\n  },\n"
       << "  \"server_report\": " << server_doc << "}\n";
    return os.str();
}

void
PredictionClient::bye()
{
    if (closed)
        return;
    closed = true;
    // Best effort: the server may already be gone.
    if (conn) {
        const std::vector<std::uint8_t> frame =
            encodeFrame(MsgType::Bye, {});
        conn->writeAll(frame.data(), frame.size());
        conn->close();
    }
}

PredictionClient::ReadStatus
PredictionClient::tryReadFrame(Frame &out)
{
    util::fatalIf(closed, "PredictionClient: used after bye()");
    std::string error;
    for (;;) {
        const FrameDecoder::Status status = decoder.next(out, &error);
        if (status == FrameDecoder::Status::Ready)
            return ReadStatus::Ok;
        if (status == FrameDecoder::Status::Error) {
            // Garbage means the byte stream is unusable — the same
            // recovery (drop it, maybe redial) as a hard close.
            util::warn("PredictionClient: server sent garbage: ",
                       error);
            return ReadStatus::Lost;
        }
        std::uint8_t buffer[4096];
        const std::size_t n = conn->read(buffer, sizeof(buffer));
        if (n == 0)
            return ReadStatus::Lost;
        decoder.feed(buffer, n);
    }
}

bool
PredictionClient::trySend(MsgType type,
                          const std::vector<std::uint8_t> &payload)
{
    util::fatalIf(closed, "PredictionClient: used after bye()");
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    return conn->writeAll(frame.data(), frame.size());
}

void
PredictionClient::raiseIfError(const Frame &frame)
{
    if (static_cast<MsgType>(frame.type) != MsgType::Error)
        return;
    ErrorMsg msg;
    if (!decodeError(frame.payload, msg)) {
        util::fatal("PredictionClient: server sent an undecodable "
                    "Error frame");
    }
    util::fatal("PredictionClient: server error ",
                errorCodeName(static_cast<ErrorCode>(msg.code)),
                " (request ", msg.requestId, "): ", msg.message);
}

// ===================================================================
// AsyncPredictionClient
// ===================================================================

namespace {

/** fatal() with the server's message if @p frame is an Error. */
void
raiseServerError(const Frame &frame)
{
    if (static_cast<MsgType>(frame.type) != MsgType::Error)
        return;
    ErrorMsg msg;
    if (!decodeError(frame.payload, msg)) {
        util::fatal("AsyncPredictionClient: server sent an "
                    "undecodable Error frame");
    }
    util::fatal("AsyncPredictionClient: server error ",
                errorCodeName(static_cast<ErrorCode>(msg.code)),
                " (request ", msg.requestId, "): ", msg.message);
}

} // namespace

AsyncPredictionClient::AsyncPredictionClient(
    std::unique_ptr<Connection> connection, RetryOptions retry_)
    : conn(std::move(connection)), retry(std::move(retry_)),
      jitter(retry.jitterSeed)
{
    util::fatalIf(!conn, "AsyncPredictionClient: null connection");
    util::fatalIf(!syncHandshake(),
                  "AsyncPredictionClient: handshake failed (peer "
                  "closed or sent garbage)");
}

AsyncPredictionClient::AsyncPredictionClient(RetryOptions retry_)
    : retry(std::move(retry_)), jitter(retry.jitterSeed)
{
    util::fatalIf(!retry.enabled || !retry.connect,
                  "AsyncPredictionClient: the dialling constructor "
                  "needs RetryOptions with a connect factory");
    for (unsigned attempt = 0; attempt < retry.reconnectAttempts;
         ++attempt) {
        conn = retry.connect();
        if (conn) {
            decoder = FrameDecoder{};
            if (syncHandshake())
                return;
        }
        sleepBackoff(attempt, 0);
    }
    util::fatal("AsyncPredictionClient: could not establish a "
                "connection in ", retry.reconnectAttempts,
                " attempts");
}

AsyncPredictionClient::~AsyncPredictionClient()
{
    close();
}

bool
AsyncPredictionClient::sendRaw(MsgType type,
                               const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(writeMu);
    return conn->writeAll(frame.data(), frame.size());
}

bool
AsyncPredictionClient::syncReadFrame(Frame &out)
{
    std::string error;
    for (;;) {
        const FrameDecoder::Status status = decoder.next(out, &error);
        if (status == FrameDecoder::Status::Ready)
            return true;
        if (status == FrameDecoder::Status::Error) {
            util::warn("AsyncPredictionClient: server sent garbage: ",
                       error);
            return false;
        }
        std::uint8_t buffer[4096];
        const std::size_t n = conn->read(buffer, sizeof(buffer));
        if (n == 0)
            return false;
        decoder.feed(buffer, n);
    }
}

bool
AsyncPredictionClient::syncHandshake()
{
    if (!sendRaw(MsgType::Hello, encodeHello(HelloMsg{})))
        return false;
    Frame reply;
    if (!syncReadFrame(reply))
        return false;
    // Typed errors here (BadVersion, BadMagic) are configuration
    // mismatches — fatal whatever the retry policy.
    raiseServerError(reply);
    util::fatalIf(static_cast<MsgType>(reply.type) != MsgType::HelloOk,
                  "AsyncPredictionClient: handshake got frame type ",
                  reply.type, " instead of HelloOk");
    return true;
}

std::uint32_t
AsyncPredictionClient::syncOpenStream(const std::string &benchmark)
{
    OpenStreamMsg open;
    open.benchmark = benchmark;
    if (!sendRaw(MsgType::OpenStream, encodeOpenStream(open)))
        return 0;
    Frame reply;
    if (!syncReadFrame(reply))
        return 0;
    raiseServerError(reply);
    util::fatalIf(
        static_cast<MsgType>(reply.type) != MsgType::StreamOpened,
        "AsyncPredictionClient: OpenStream got frame type ",
        reply.type);
    StreamOpenedMsg opened;
    util::fatalIf(!decodeStreamOpened(reply.payload, opened),
                  "AsyncPredictionClient: undecodable StreamOpened");
    util::fatalIf(opened.streamId == 0,
                  "AsyncPredictionClient: server assigned stream id 0");
    streamKeys[opened.streamId] = opened.streamKey;
    return opened.streamId;
}

std::uint32_t
AsyncPredictionClient::openStream(const std::string &benchmark)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        util::fatalIf(threadsStarted,
                      "AsyncPredictionClient: open every stream "
                      "before the first submit()");
    }
    for (;;) {
        const std::uint32_t id = syncOpenStream(benchmark);
        if (id != 0) {
            streamBench[id] = benchmark;
            remap[id] = id;
            return id;
        }
        // Connection lost mid-open before any submit: redial inline.
        util::fatalIf(!retry.enabled || !retry.connect,
                      "AsyncPredictionClient: connection lost (no "
                      "reconnect factory configured)");
        bool redialled = false;
        for (unsigned attempt = 0;
             attempt < retry.reconnectAttempts && !redialled;
             ++attempt) {
            std::unique_ptr<Connection> fresh = retry.connect();
            if (fresh) {
                conn = std::move(fresh);
                decoder = FrameDecoder{};
                if (syncHandshake()) {
                    redialled = true;
                    break;
                }
            }
            sleepBackoff(attempt, 0);
        }
        util::fatalIf(!redialled,
                      "AsyncPredictionClient: reconnect failed after ",
                      retry.reconnectAttempts, " attempts");
        {
            std::lock_guard<std::mutex> lock(mu);
            ++counters.reconnects;
        }
    }
}

std::uint64_t
AsyncPredictionClient::streamKey(std::uint32_t stream_id) const
{
    const auto it = streamKeys.find(stream_id);
    util::fatalIf(it == streamKeys.end(),
                  "AsyncPredictionClient: stream ", stream_id,
                  " was never opened");
    return it->second;
}

std::uint64_t
AsyncPredictionClient::backoffMicros(unsigned round,
                                     std::uint64_t floor_micros)
{
    std::uint64_t wait = retry.baseBackoffMicros
        << std::min(round, 20u);
    wait = std::min(wait, retry.maxBackoffMicros);
    wait = static_cast<std::uint64_t>(
        static_cast<double>(wait) * (0.5 + 0.5 * jitter.uniform()));
    wait = std::max(wait, floor_micros);
    ++counters.backoffSleeps;
    return wait;
}

void
AsyncPredictionClient::sleepBackoff(unsigned round,
                                    std::uint64_t floor_micros)
{
    std::uint64_t wait = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        wait = backoffMicros(round, floor_micros);
    }
    if (wait > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(wait));
}

void
AsyncPredictionClient::startThreads()
{
    std::lock_guard<std::mutex> lock(mu);
    if (threadsStarted)
        return;
    threadsStarted = true;
    sender = std::thread([this] { senderLoop(); });
    receiver = std::thread([this] { receiverLoop(); });
}

std::uint64_t
AsyncPredictionClient::submit(std::uint32_t stream_id,
                              const rtl::JobInput &job, Callback done,
                              std::uint64_t deadline_micros)
{
    startThreads();
    std::lock_guard<std::mutex> lock(mu);
    util::fatalIf(closing,
                  "AsyncPredictionClient: submit() after close()");
    util::fatalIf(remap.find(stream_id) == remap.end(),
                  "AsyncPredictionClient: stream ", stream_id,
                  " was never opened");
    const std::uint64_t id = nextRequestId++;
    Slot slot;
    slot.streamId = stream_id;
    slot.job = job;
    slot.deadlineMicros = deadline_micros;
    slot.done = std::move(done);
    inflight.emplace(id, std::move(slot));
    sendQueue.push_back(id);
    cv.notify_all();
    return id;
}

void
AsyncPredictionClient::senderLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        cv.wait(lock, [this] {
            return closing || (!sendQueue.empty() && !reconnecting);
        });
        if (closing)
            return;

        // Retired slots can linger in the queue (a duplicate reply
        // completed a Busy-requeued request); drop them here.
        while (!sendQueue.empty() &&
               inflight.find(sendQueue.front()) == inflight.end())
            sendQueue.pop_front();
        if (sendQueue.empty())
            continue;

        // Busy-parked requests carry a not-before time; pick the
        // first sendable one, or sleep until the earliest gate.
        const Clock::time_point now = Clock::now();
        Clock::time_point earliest = Clock::time_point::max();
        std::size_t pick = sendQueue.size();
        for (std::size_t i = 0; i < sendQueue.size(); ++i) {
            const auto it = inflight.find(sendQueue[i]);
            if (it == inflight.end())
                continue;
            if (it->second.readyAt <= now) {
                pick = i;
                break;
            }
            earliest = std::min(earliest, it->second.readyAt);
        }
        if (pick == sendQueue.size()) {
            cv.wait_until(lock, earliest);
            continue;
        }
        const std::uint64_t id = sendQueue[pick];
        sendQueue.erase(sendQueue.begin() +
                        static_cast<std::ptrdiff_t>(pick));
        Slot &slot = inflight[id];

        // Same livelock accounting as the synchronous client: Busy
        // replies and completion progress reset the count; only sends
        // that vanish without any reply accumulate.
        if (slot.unanswered > 0 && completedCount > slot.completedAtSend)
            slot.unanswered = 0;
        ++slot.unanswered;
        util::fatalIf(slot.unanswered > retry.maxAttempts,
                      "AsyncPredictionClient: request ", id,
                      " re-sent ", retry.maxAttempts,
                      " times with no reply and no progress");
        if (slot.everSent)
            ++counters.retries;
        slot.everSent = true;
        slot.completedAtSend = completedCount;
        slot.sent = true;

        PredictMsg request;
        const auto mapped = remap.find(slot.streamId);
        request.streamId =
            mapped != remap.end() ? mapped->second : slot.streamId;
        request.requestId = id;
        request.deadlineMicros = slot.deadlineMicros;
        request.job = slot.job;
        ++counters.requestsSent;
        const std::vector<std::uint8_t> frame =
            encodeFrame(MsgType::Predict, encodePredict(request));

        Connection *wire = conn.get();
        senderInSend = true;
        lock.unlock();
        bool ok;
        {
            std::lock_guard<std::mutex> wl(writeMu);
            ok = wire->writeAll(frame.data(), frame.size());
        }
        lock.lock();
        senderInSend = false;
        if (!ok) {
            // The frame never made it. Requeue and park until the
            // receiver notices the dead connection (its read sees
            // EOF) and swaps in a fresh one.
            const auto it = inflight.find(id);
            if (it != inflight.end() && it->second.sent) {
                it->second.sent = false;
                it->second.readyAt = Clock::time_point{};
                sendQueue.push_front(id);
            }
            const std::uint64_t gen = generation;
            cv.notify_all();
            cv.wait(lock, [this, gen] {
                return closing || generation != gen;
            });
        } else {
            cv.notify_all();
        }
    }
}

void
AsyncPredictionClient::receiverLoop()
{
    for (;;) {
        Frame frame;
        std::string error;
        bool lost = false;
        for (;;) {
            const FrameDecoder::Status status =
                decoder.next(frame, &error);
            if (status == FrameDecoder::Status::Ready)
                break;
            if (status == FrameDecoder::Status::Error) {
                util::warn("AsyncPredictionClient: server sent "
                           "garbage: ", error);
                lost = true;
                break;
            }
            std::uint8_t buffer[4096];
            const std::size_t n = conn->read(buffer, sizeof(buffer));
            if (n == 0) {
                lost = true;
                break;
            }
            decoder.feed(buffer, n);
        }
        if (lost) {
            {
                std::lock_guard<std::mutex> lock(mu);
                if (closing)
                    return;
            }
            if (!handleConnectionLost())
                return;
            continue;
        }
        if (!handleFrame(frame))
            return;
    }
}

bool
AsyncPredictionClient::handleFrame(const Frame &frame)
{
    if (static_cast<MsgType>(frame.type) == MsgType::PredictReply) {
        PredictReplyMsg reply;
        util::fatalIf(!decodePredictReply(frame.payload, reply),
                      "AsyncPredictionClient: undecodable "
                      "PredictReply");
        PredictOutcome outcome;
        outcome.ok = true;
        outcome.reply = reply;
        complete(reply.requestId, outcome);
        return true;
    }

    if (static_cast<MsgType>(frame.type) == MsgType::Error) {
        ErrorMsg error;
        util::fatalIf(!decodeError(frame.payload, error),
                      "AsyncPredictionClient: undecodable Error "
                      "frame");
        const ErrorCode code = static_cast<ErrorCode>(error.code);

        if (code == ErrorCode::Busy) {
            std::lock_guard<std::mutex> lock(mu);
            const auto it = inflight.find(error.requestId);
            if (it == inflight.end()) {
                util::fatalIf(!retry.enabled,
                              "AsyncPredictionClient: Busy for "
                              "unknown request ", error.requestId);
                ++counters.duplicateReplies;
                return true;
            }
            util::fatalIf(!retry.enabled,
                          "AsyncPredictionClient: server busy and "
                          "retries are disabled (request ",
                          error.requestId, ")");
            ++counters.busyReplies;
            busyFloor = error.retryAfterMicros;
            Slot &slot = it->second;
            slot.sent = false;
            slot.unanswered = 0;  // Answered; the server lives.
            slot.readyAt = Clock::now() +
                std::chrono::microseconds(
                    backoffMicros(busyRound++, busyFloor));
            sendQueue.push_back(error.requestId);
            cv.notify_all();
            return true;
        }
        if (code == ErrorCode::DeadlineExceeded) {
            PredictOutcome outcome;
            outcome.ok = false;
            outcome.error = code;
            complete(error.requestId, outcome);
            return true;
        }
        if (code == ErrorCode::ShuttingDown && retry.enabled &&
            retry.connect) {
            // The connection is a dead end; everything unanswered
            // moves to a fresh one.
            {
                std::lock_guard<std::mutex> wl(writeMu);
                conn->close();
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                if (closing)
                    return false;
            }
            return handleConnectionLost();
        }
        raiseServerError(frame);
        return true;
    }

    util::fatal("AsyncPredictionClient: expected PredictReply, got "
                "type ", frame.type);
    return false;
}

void
AsyncPredictionClient::complete(std::uint64_t request_id,
                                const PredictOutcome &outcome)
{
    Callback done;
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = inflight.find(request_id);
        if (it == inflight.end()) {
            util::fatalIf(!retry.enabled,
                          "AsyncPredictionClient: duplicate or "
                          "unknown reply for request ", request_id);
            ++counters.duplicateReplies;
            return;
        }
        done = std::move(it->second.done);
        inflight.erase(it);
        ++completedCount;
        busyRound = 0;  // The server is making progress again.
        if (!outcome.ok && outcome.error == ErrorCode::DeadlineExceeded)
            ++counters.deadlineExpired;
        ++dispatching;
    }
    if (done)
        done(request_id, outcome);
    {
        std::lock_guard<std::mutex> lock(mu);
        --dispatching;
    }
    cv.notify_all();
}

bool
AsyncPredictionClient::handleConnectionLost()
{
    util::fatalIf(!retry.enabled || !retry.connect,
                  "AsyncPredictionClient: connection lost (no "
                  "reconnect factory configured)");
    {
        std::unique_lock<std::mutex> lock(mu);
        reconnecting = true;
        cv.notify_all();
        // Wait the sender out of its in-progress write; after this,
        // the receiver owns the connection exclusively.
        cv.wait(lock, [this] { return !senderInSend || closing; });
        if (closing) {
            reconnecting = false;
            return false;
        }
        // Whatever was written to the dead connection is gone (or
        // its reply is); it all goes back on the send queue.
        // Re-execution is safe: replies are byte-deterministic.
        for (auto &entry : inflight) {
            if (entry.second.sent) {
                entry.second.sent = false;
                entry.second.readyAt = Clock::time_point{};
                sendQueue.push_back(entry.first);
            }
        }
    }

    for (unsigned attempt = 0; attempt < retry.reconnectAttempts;
         ++attempt) {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (closing) {
                reconnecting = false;
                return false;
            }
        }
        std::unique_ptr<Connection> fresh = retry.connect();
        if (!fresh) {
            sleepBackoff(attempt, 0);
            continue;
        }
        {
            std::lock_guard<std::mutex> wl(writeMu);
            conn = std::move(fresh);
        }
        decoder = FrameDecoder{};
        if (!syncHandshake()) {
            sleepBackoff(attempt, 0);
            continue;
        }
        // Re-open every stream the caller holds a handle to; ids may
        // differ on the new connection (another server instance), so
        // the remap table translates at send time.
        bool opened_all = true;
        for (const auto &entry : streamBench) {
            const std::uint32_t fresh_id =
                syncOpenStream(entry.second);
            if (fresh_id == 0) {
                opened_all = false;
                break;
            }
            std::lock_guard<std::mutex> lock(mu);
            remap[entry.first] = fresh_id;
        }
        if (!opened_all) {
            sleepBackoff(attempt, 0);
            continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        ++counters.reconnects;
        reconnecting = false;
        ++generation;
        cv.notify_all();
        return true;
    }
    util::fatal("AsyncPredictionClient: reconnect failed after ",
                retry.reconnectAttempts, " attempts");
    return false;
}

void
AsyncPredictionClient::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] {
        return closing || (inflight.empty() && dispatching == 0);
    });
}

void
AsyncPredictionClient::close()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (closing)
            return;
        closing = true;
        cv.notify_all();
    }
    {
        // Unblocks the receiver's read and fails the sender's write.
        std::lock_guard<std::mutex> wl(writeMu);
        if (conn)
            conn->close();
    }
    if (sender.joinable())
        sender.join();
    if (receiver.joinable())
        receiver.join();

    // Threads are gone; whatever is still in flight gets a typed
    // shutdown outcome on this thread, honouring fire-exactly-once.
    std::vector<std::pair<std::uint64_t, Callback>> leftovers;
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto &entry : inflight)
            leftovers.emplace_back(entry.first,
                                   std::move(entry.second.done));
        inflight.clear();
        sendQueue.clear();
    }
    std::sort(leftovers.begin(), leftovers.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    PredictOutcome outcome;
    outcome.ok = false;
    outcome.error = ErrorCode::ShuttingDown;
    for (auto &entry : leftovers) {
        if (entry.second)
            entry.second(entry.first, outcome);
    }
    cv.notify_all();
}

ClientStats
AsyncPredictionClient::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

} // namespace serve
} // namespace predvfs
