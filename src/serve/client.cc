#include "serve/client.hh"

#include <unordered_map>

#include "util/logging.hh"

namespace predvfs {
namespace serve {

PredictionClient::PredictionClient(
    std::unique_ptr<Connection> connection)
    : conn(std::move(connection))
{
    util::fatalIf(!conn, "PredictionClient: null connection");
    send(MsgType::Hello, encodeHello(HelloMsg{}));
    const Frame reply = readFrame();
    raiseIfError(reply);
    util::fatalIf(static_cast<MsgType>(reply.type) != MsgType::HelloOk,
                  "PredictionClient: handshake got frame type ",
                  reply.type, " instead of HelloOk");
}

PredictionClient::~PredictionClient()
{
    bye();
}

std::uint32_t
PredictionClient::openStream(const std::string &benchmark)
{
    OpenStreamMsg open;
    open.benchmark = benchmark;
    send(MsgType::OpenStream, encodeOpenStream(open));
    const Frame reply = readFrame();
    raiseIfError(reply);
    util::fatalIf(
        static_cast<MsgType>(reply.type) != MsgType::StreamOpened,
        "PredictionClient: OpenStream got frame type ", reply.type);
    StreamOpenedMsg opened;
    util::fatalIf(!decodeStreamOpened(reply.payload, opened),
                  "PredictionClient: undecodable StreamOpened");
    streamKeys[opened.streamId] = opened.streamKey;
    return opened.streamId;
}

std::uint64_t
PredictionClient::streamKey(std::uint32_t stream_id) const
{
    const auto it = streamKeys.find(stream_id);
    util::fatalIf(it == streamKeys.end(),
                  "PredictionClient: stream ", stream_id,
                  " was never opened");
    return it->second;
}

PredictReplyMsg
PredictionClient::predict(std::uint32_t stream_id,
                          const rtl::JobInput &job)
{
    std::vector<rtl::JobInput> jobs(1, job);
    return predictMany(stream_id, jobs).front();
}

std::vector<PredictReplyMsg>
PredictionClient::predictMany(std::uint32_t stream_id,
                              const std::vector<rtl::JobInput> &jobs)
{
    // Write the whole burst before reading anything: the server's
    // accumulation window can only coalesce requests that are already
    // in flight.
    std::unordered_map<std::uint64_t, std::size_t> order;
    order.reserve(jobs.size());
    for (const rtl::JobInput &job : jobs) {
        PredictMsg request;
        request.streamId = stream_id;
        request.requestId = nextRequestId++;
        request.job = job;
        order[request.requestId] = order.size();
        send(MsgType::Predict, encodePredict(request));
    }

    std::vector<PredictReplyMsg> replies(jobs.size());
    std::vector<bool> seen(jobs.size(), false);
    for (std::size_t got = 0; got < jobs.size(); ++got) {
        const Frame frame = readFrame();
        raiseIfError(frame);
        util::fatalIf(
            static_cast<MsgType>(frame.type) != MsgType::PredictReply,
            "PredictionClient: expected PredictReply, got type ",
            frame.type);
        PredictReplyMsg reply;
        util::fatalIf(!decodePredictReply(frame.payload, reply),
                      "PredictionClient: undecodable PredictReply");
        const auto it = order.find(reply.requestId);
        util::fatalIf(it == order.end(),
                      "PredictionClient: reply for unknown request ",
                      reply.requestId);
        util::fatalIf(seen[it->second],
                      "PredictionClient: duplicate reply for request ",
                      reply.requestId);
        seen[it->second] = true;
        replies[it->second] = reply;
    }
    return replies;
}

std::string
PredictionClient::statsJson()
{
    send(MsgType::Stats, encodeStats(StatsMsg{}));
    const Frame frame = readFrame();
    raiseIfError(frame);
    util::fatalIf(
        static_cast<MsgType>(frame.type) != MsgType::StatsReply,
        "PredictionClient: expected StatsReply, got type ", frame.type);
    StatsReplyMsg reply;
    util::fatalIf(!decodeStatsReply(frame.payload, reply),
                  "PredictionClient: undecodable StatsReply");
    return reply.json;
}

void
PredictionClient::bye()
{
    if (closed)
        return;
    closed = true;
    // Best effort: the server may already be gone.
    const std::vector<std::uint8_t> frame =
        encodeFrame(MsgType::Bye, {});
    conn->writeAll(frame.data(), frame.size());
    conn->close();
}

Frame
PredictionClient::readFrame()
{
    util::fatalIf(closed, "PredictionClient: used after bye()");
    Frame frame;
    std::string error;
    for (;;) {
        const FrameDecoder::Status status = decoder.next(frame, &error);
        if (status == FrameDecoder::Status::Ready)
            return frame;
        util::fatalIf(status == FrameDecoder::Status::Error,
                      "PredictionClient: server sent garbage: ", error);
        std::uint8_t buffer[4096];
        const std::size_t n = conn->read(buffer, sizeof(buffer));
        util::fatalIf(n == 0,
                      "PredictionClient: server closed the connection");
        decoder.feed(buffer, n);
    }
}

void
PredictionClient::send(MsgType type,
                       const std::vector<std::uint8_t> &payload)
{
    util::fatalIf(closed, "PredictionClient: used after bye()");
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    util::fatalIf(!conn->writeAll(frame.data(), frame.size()),
                  "PredictionClient: connection closed mid-write");
}

void
PredictionClient::raiseIfError(const Frame &frame)
{
    if (static_cast<MsgType>(frame.type) != MsgType::Error)
        return;
    ErrorMsg msg;
    if (!decodeError(frame.payload, msg)) {
        util::fatal("PredictionClient: server sent an undecodable "
                    "Error frame");
    }
    util::fatal("PredictionClient: server error ",
                errorCodeName(static_cast<ErrorCode>(msg.code)),
                " (request ", msg.requestId, "): ", msg.message);
}

} // namespace serve
} // namespace predvfs
