/**
 * @file
 * Byte transports for the prediction service.
 *
 * Three implementations of one blocking Connection interface:
 *
 *  - a loopback pipe pair (two in-process byte queues), used by the
 *    replay/concurrency tests, the bench, and platforms without Unix
 *    sockets — no file descriptors, no kernel, fully deterministic
 *    teardown;
 *  - AF_UNIX stream sockets (listener + connector) for the
 *    client/server split on one host, POSIX-only and compiled out
 *    elsewhere;
 *  - AF_INET TCP sockets (listener + connector) for the off-host
 *    split, selected by the "tcp://host:port" address scheme.
 *
 * The transport is chosen by address *scheme*: "tcp://host:port"
 * dials or binds TCP, anything else is a Unix-domain socket path
 * (an optional "unix://" prefix is accepted). makeListener() and
 * connectEndpoint() are the scheme-dispatching entry points the
 * daemon and client binaries use; the chaos wrapper composes over
 * whatever they return, because faults are injected at the
 * Connection interface, not at the socket.
 *
 * Connections are bidirectional byte streams with TCP-like semantics:
 * read() blocks until data or EOF, close() is idempotent and wakes
 * blocked peers. writeAll() on one endpoint may safely race with
 * read() on the same endpoint, but concurrent writers must bring
 * their own lock (the server keeps one per connection).
 */

#ifndef PREDVFS_SERVE_TRANSPORT_HH
#define PREDVFS_SERVE_TRANSPORT_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace predvfs {
namespace serve {

/** A blocking, bidirectional byte stream. */
class Connection
{
  public:
    virtual ~Connection() = default;

    /**
     * Read up to @p max bytes into @p buf, blocking until at least one
     * byte is available. @return bytes read; 0 means the peer closed.
     */
    virtual std::size_t read(void *buf, std::size_t max) = 0;

    /** Write all @p n bytes. @return false if the peer closed. */
    virtual bool writeAll(const void *buf, std::size_t n) = 0;

    /** Close both directions; safe to call twice or concurrently. */
    virtual void close() = 0;
};

/** @return two connected in-process endpoints (client, server). */
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
makeLoopbackPair();

/** @return true when this build has Unix-domain socket support. */
bool unixSocketsAvailable();

/** @return true when this build has TCP socket support. */
bool tcpSocketsAvailable();

/**
 * A parsed serving address. "tcp://host:port" selects the TCP
 * transport; anything else (optionally prefixed "unix://") is a
 * Unix-domain socket path. An empty TCP host means the wildcard
 * address for listeners and the loopback address for connectors.
 */
struct Endpoint
{
    enum class Kind { Unix, Tcp };

    Kind kind = Kind::Unix;
    std::string path;        //!< Unix: the socket file.
    std::string host;        //!< TCP: numeric IPv4 or "localhost".
    std::uint16_t port = 0;  //!< TCP: 0 = ephemeral (listeners only).

    /** Canonical address string ("tcp://host:port" or the path). */
    std::string address() const;
};

/**
 * Parse @p address into @p out. @return false (with @p error set)
 * on a malformed TCP authority — bad port, stray characters; a
 * non-"tcp://" address is always accepted as a Unix path.
 */
bool tryParseEndpoint(const std::string &address, Endpoint &out,
                      std::string *error = nullptr);

/** tryParseEndpoint() that fatal()s on malformed input. */
Endpoint parseEndpoint(const std::string &address);

/** A listening serving socket, whatever the transport. */
class Listener
{
  public:
    virtual ~Listener() = default;

    /**
     * Accept one connection. Blocks; @return nullptr once close() was
     * called (the accept loop's shutdown signal).
     */
    virtual std::unique_ptr<Connection> accept() = 0;

    /** Stop accepting. Idempotent. */
    virtual void close() = 0;

    /** The concrete bound address — for TCP with port 0 this carries
     *  the kernel-assigned port, so tests can dial it back. */
    virtual std::string address() const = 0;
};

/**
 * A listening Unix-domain socket. fatal() on bind/listen failure (a
 * deployment error, not a protocol event). Any existing socket file
 * at @p path is removed first, matching common daemon behaviour.
 */
class UnixListener : public Listener
{
  public:
    explicit UnixListener(const std::string &path);
    ~UnixListener() override;

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    std::unique_ptr<Connection> accept() override;

    /** Stop accepting and unlink the socket file. Idempotent. */
    void close() override;

    std::string address() const override { return sockPath; }

    const std::string &path() const { return sockPath; }

  private:
    std::string sockPath;
    int fd = -1;
    // close() may race accept(); the flag is checked between polls.
    std::shared_ptr<struct ListenerState> state;
};

/**
 * A listening TCP socket (IPv4). fatal() on bind/listen failure.
 * @p host is a numeric IPv4 address, "localhost", or empty/"*" for
 * the wildcard address; @p port 0 binds an ephemeral port, readable
 * back through port(). Accepted connections have TCP_NODELAY set —
 * frames are small and the server's accumulation window already
 * does the batching Nagle would otherwise duplicate with latency.
 */
class TcpListener : public Listener
{
  public:
    TcpListener(const std::string &host, std::uint16_t port);
    ~TcpListener() override;

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    std::unique_ptr<Connection> accept() override;
    void close() override;

    /** "tcp://host:port" with the actual bound port. */
    std::string address() const override;

    /** The bound port (kernel-assigned when constructed with 0). */
    std::uint16_t port() const { return boundPort; }

  private:
    std::string bindHost;
    std::uint16_t boundPort = 0;
    int fd = -1;
    std::shared_ptr<struct ListenerState> state;
};

/**
 * Listen on @p address, dispatching on its scheme: "tcp://host:port"
 * binds a TcpListener, anything else a UnixListener. fatal() on a
 * malformed address or bind failure.
 */
std::unique_ptr<Listener> makeListener(const std::string &address);

/**
 * Connect to a serving socket, retrying until @p timeout_ms elapses
 * (covers the server-still-starting race in scripted smoke tests).
 *
 * timeout_ms = 0 means exactly one connect(2) attempt with no sleep:
 * the deadline is already in the past when the first attempt fails,
 * so the loop exits before its 10 ms retry nap. Callers probing "is
 * a server there right now?" rely on that single-shot behaviour —
 * the unit tests pin it.
 *
 * @return nullptr on timeout (or immediate failure when
 *         timeout_ms = 0), or when sockets are unavailable.
 */
std::unique_ptr<Connection> connectWithRetry(const std::string &path,
                                             int timeout_ms = 0);

/** Historical name for connectWithRetry(). */
std::unique_ptr<Connection> connectUnix(const std::string &path,
                                        int timeout_ms = 0);

/**
 * Connect to a TCP serving socket under the same retry/timeout
 * discipline as connectWithRetry() — timeout_ms = 0 is one
 * connect(2) attempt. An empty @p host dials loopback. The
 * connected socket has TCP_NODELAY set.
 */
std::unique_ptr<Connection> connectTcp(const std::string &host,
                                       std::uint16_t port,
                                       int timeout_ms = 0);

/**
 * Dial @p address, dispatching on its scheme: "tcp://host:port" goes
 * through connectTcp(), anything else through connectWithRetry().
 * @return nullptr on timeout, malformed address, or an unavailable
 * transport (the same contract either way).
 */
std::unique_ptr<Connection> connectEndpoint(const std::string &address,
                                            int timeout_ms = 0);

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_TRANSPORT_HH
