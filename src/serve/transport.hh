/**
 * @file
 * Byte transports for the prediction service.
 *
 * Two implementations of one blocking Connection interface:
 *
 *  - a loopback pipe pair (two in-process byte queues), used by the
 *    replay/concurrency tests, the bench, and platforms without Unix
 *    sockets — no file descriptors, no kernel, fully deterministic
 *    teardown;
 *  - AF_UNIX stream sockets (listener + connector) for the real
 *    client/server split, POSIX-only and compiled out elsewhere.
 *
 * Connections are bidirectional byte streams with TCP-like semantics:
 * read() blocks until data or EOF, close() is idempotent and wakes
 * blocked peers. writeAll() on one endpoint may safely race with
 * read() on the same endpoint, but concurrent writers must bring
 * their own lock (the server keeps one per connection).
 */

#ifndef PREDVFS_SERVE_TRANSPORT_HH
#define PREDVFS_SERVE_TRANSPORT_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace predvfs {
namespace serve {

/** A blocking, bidirectional byte stream. */
class Connection
{
  public:
    virtual ~Connection() = default;

    /**
     * Read up to @p max bytes into @p buf, blocking until at least one
     * byte is available. @return bytes read; 0 means the peer closed.
     */
    virtual std::size_t read(void *buf, std::size_t max) = 0;

    /** Write all @p n bytes. @return false if the peer closed. */
    virtual bool writeAll(const void *buf, std::size_t n) = 0;

    /** Close both directions; safe to call twice or concurrently. */
    virtual void close() = 0;
};

/** @return two connected in-process endpoints (client, server). */
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
makeLoopbackPair();

/** @return true when this build has Unix-domain socket support. */
bool unixSocketsAvailable();

/**
 * A listening Unix-domain socket. fatal() on bind/listen failure (a
 * deployment error, not a protocol event). Any existing socket file
 * at @p path is removed first, matching common daemon behaviour.
 */
class UnixListener
{
  public:
    explicit UnixListener(const std::string &path);
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Accept one connection. Blocks; @return nullptr once close() was
     * called (the accept loop's shutdown signal).
     */
    std::unique_ptr<Connection> accept();

    /** Stop accepting and unlink the socket file. Idempotent. */
    void close();

    const std::string &path() const { return sockPath; }

  private:
    std::string sockPath;
    int fd = -1;
    // close() may race accept(); the flag is checked between polls.
    std::shared_ptr<struct ListenerState> state;
};

/**
 * Connect to a serving socket, retrying until @p timeout_ms elapses
 * (covers the server-still-starting race in scripted smoke tests).
 *
 * timeout_ms = 0 means exactly one connect(2) attempt with no sleep:
 * the deadline is already in the past when the first attempt fails,
 * so the loop exits before its 10 ms retry nap. Callers probing "is
 * a server there right now?" rely on that single-shot behaviour —
 * the unit tests pin it.
 *
 * @return nullptr on timeout (or immediate failure when
 *         timeout_ms = 0), or when sockets are unavailable.
 */
std::unique_ptr<Connection> connectWithRetry(const std::string &path,
                                             int timeout_ms = 0);

/** Historical name for connectWithRetry(). */
std::unique_ptr<Connection> connectUnix(const std::string &path,
                                        int timeout_ms = 0);

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_TRANSPORT_HH
