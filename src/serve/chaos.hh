/**
 * @file
 * Seeded fault injection for serve transports.
 *
 * chaosWrap() decorates a Connection with the network's bad days:
 * writes fragmented into arbitrary chunks, bytes held back until the
 * next operation (a lazy flush), reads truncated to a few bytes, and
 * mid-frame disconnects. Every decision is drawn from an Rng seeded
 * by (plan seed, connection index), so a soak run is bit-for-bit
 * reproducible from its seed — the same discipline as sim/fault's
 * FaultSchedule, lifted to the byte-transport layer.
 *
 * The faults deliberately preserve what a real kernel socket
 * preserves: bytes that are delivered arrive in order and unmodified.
 * Chaos never corrupts payloads — corruption-at-rest is the frame
 * decoder corpus's job — it only re-times, fragments, and severs. A
 * correct client/server pair must therefore produce byte-identical
 * replies under any chaos schedule; divergence is a protocol bug, not
 * an artefact of the harness.
 *
 * The wrapper serialises no internal state: it is meant for the
 * client endpoint of a connection, where one thread both reads and
 * writes. Do not share a chaos-wrapped endpoint between threads.
 */

#ifndef PREDVFS_SERVE_CHAOS_HH
#define PREDVFS_SERVE_CHAOS_HH

#include <cstdint>
#include <memory>

#include "serve/transport.hh"

namespace predvfs {
namespace serve {

/** Fault rates for one chaos-wrapped connection; all in [0, 1]. */
struct ChaosPlan
{
    /** Root seed; combined with the connection index so each wrapped
     *  connection draws an independent, reproducible stream. */
    std::uint64_t seed = 1;

    double partialWriteRate = 0.0;  //!< Fragment a write into chunks.
    double delayFlushRate = 0.0;    //!< Hold a write's tail until the
                                    //!< next read/write/close.
    double shortReadRate = 0.0;     //!< Cap a read at 1–7 bytes.
    double disconnectRate = 0.0;    //!< Sever mid-write, dropping the
                                    //!< unsent suffix.

    /**
     * A balanced plan at overall intensity @p rate: fragmentation,
     * lazy flushes, and short reads at @p rate each, disconnects at a
     * quarter of it (each disconnect costs a reconnect round trip, so
     * equal weighting would drown the soak in handshakes).
     */
    static ChaosPlan uniform(std::uint64_t seed, double rate)
    {
        ChaosPlan plan;
        plan.seed = seed;
        plan.partialWriteRate = rate;
        plan.delayFlushRate = rate;
        plan.shortReadRate = rate;
        plan.disconnectRate = rate / 4.0;
        return plan;
    }
};

/**
 * Wrap @p inner in seeded chaos. @p connection_index distinguishes
 * connections sharing one plan (client N of a soak) — the fault
 * sequence is a pure function of (plan.seed, connection_index, the
 * order of read/write/close calls).
 */
std::unique_ptr<Connection> chaosWrap(std::unique_ptr<Connection> inner,
                                      const ChaosPlan &plan,
                                      std::uint64_t connection_index);

} // namespace serve
} // namespace predvfs

#endif // PREDVFS_SERVE_CHAOS_HH
