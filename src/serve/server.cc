#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "accel/registry.hh"
#include "core/flow.hh"
#include "serve/protocol.hh"
#include "sim/job_cache.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/suite.hh"

namespace predvfs {
namespace serve {

using Clock = std::chrono::steady_clock;

ServerOptions
serverOptionsFromEnv(ServerOptions base)
{
    base.workers = static_cast<unsigned>(
        util::envUint("PREDVFS_SERVE_WORKERS", base.workers, 1, 64));
    base.shards = static_cast<unsigned>(
        util::envUint("PREDVFS_SERVE_SHARDS", base.shards, 1, 64));
    base.maxBatchJobs = static_cast<std::size_t>(
        util::envUint("PREDVFS_SERVE_MAX_BATCH", base.maxBatchJobs, 1,
                      4096));
    base.batchWindowMicros = static_cast<unsigned>(
        util::envUint("PREDVFS_SERVE_WINDOW_US", base.batchWindowMicros,
                      0, 1000000));
    base.queueBound = static_cast<std::size_t>(
        util::envUint("PREDVFS_SERVE_QUEUE", base.queueBound, 1,
                      1u << 20));
    base.snapshotPath =
        util::envString("PREDVFS_SNAPSHOT", base.snapshotPath);
    return base;
}

double
StreamTelemetry::hitRate() const
{
    return requests == 0
        ? 0.0
        : static_cast<double>(cacheHits + coalesced) /
            static_cast<double>(requests);
}

double
StreamTelemetry::meanBatchOccupancy() const
{
    return batches == 0
        ? 0.0
        : static_cast<double>(batchJobs) / static_cast<double>(batches);
}

double
ShardTelemetry::meanBatchOccupancy() const
{
    return batches == 0
        ? 0.0
        : static_cast<double>(batchJobs) / static_cast<double>(batches);
}

namespace {

/** Ring of recent service times; percentile queries copy and sort. */
struct ServiceTimeRing
{
    static constexpr std::size_t kCapacity = 4096;
    std::vector<double> micros;
    std::size_t next = 0;

    void push(double value)
    {
        if (micros.size() < kCapacity) {
            micros.push_back(value);
        } else {
            micros[next] = value;
            next = (next + 1) % kCapacity;
        }
    }

    double percentile(double p) const
    {
        if (micros.empty())
            return 0.0;
        std::vector<double> sorted(micros);
        const std::size_t k = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(
                p * static_cast<double>(sorted.size() - 1) + 0.5));
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<std::ptrdiff_t>(k),
                         sorted.end());
        return sorted[static_cast<std::ptrdiff_t>(k)];
    }
};

/** Counters of one served stream (all under one mutex). */
struct TelemetryState
{
    mutable std::mutex mu;
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t simulated = 0;
    std::uint64_t busy = 0;
    std::uint64_t expired = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchJobs = 0;
    ServiceTimeRing serviceTimes;
};

struct PendingRequest;
struct Shard;

/** Everything one registered benchmark serves with. */
struct Stream
{
    std::uint32_t id = 0;
    std::string name;
    std::shared_ptr<const accel::Accelerator> accel;
    std::unique_ptr<power::VfModel> vf;
    std::unique_ptr<power::OperatingPointTable> table;
    std::unique_ptr<sim::SimulationEngine> engine;
    core::FlowResult flow;
    std::uint64_t streamKey = 0;
    TelemetryState telem;

    /** The dispatcher shard this stream hashed to (streamKey %
     *  shards); set once at registration, before any request can
     *  reference the stream. */
    Shard *home = nullptr;

    /** @name Bounded pending queue — guarded by home->mu. */
    /// @{
    std::deque<PendingRequest> pending;
    std::size_t peakDepth = 0;
    /// @}
};

/**
 * One dispatcher shard: a disjoint set of streams, their pending
 * queues, an accumulation window, and the thread that drains them.
 * Every mutable field is guarded by mu; the dispatcher thread is the
 * only consumer, readers are the producers. Each shard owns its own
 * simulation pool because ThreadPool::run() is single-flight — two
 * shards must never share one.
 */
struct Shard
{
    unsigned index = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Stream *> streams;   //!< Streams hashed here.
    std::size_t totalPending = 0;    //!< Sum over streams' queues.
    std::size_t peakPending = 0;     //!< Peak of totalPending.
    std::uint64_t drains = 0;        //!< Sweeps that found work.
    bool stopping = false;
    std::unique_ptr<util::ThreadPool> pool;
    std::thread dispatcher;
};

/** One live connection: the byte stream, its write lock (replies come
 *  from both the reader and the dispatcher), and its reader thread. */
struct ConnState
{
    std::shared_ptr<Connection> conn;
    std::mutex writeMu;
    std::thread reader;
};

/** A Predict request parked on its stream's dispatch queue. */
struct PendingRequest
{
    std::shared_ptr<ConnState> conn;
    Stream *stream = nullptr;
    std::uint64_t requestId = 0;
    rtl::JobInput job;
    Clock::time_point enqueued;
    /** Absolute expiry; time_point::max() when no deadline was set.
     *  Checked exactly once, when the dispatcher takes the request
     *  out of the queue — never after simulation has started. */
    Clock::time_point expiry = Clock::time_point::max();
};

void
writeFrame(ConnState &conn, MsgType type,
           const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(conn.writeMu);
    // A vanished peer makes the write fail; the reader thread sees the
    // matching EOF and retires the connection, so ignore it here.
    conn.conn->writeAll(frame.data(), frame.size());
}

void
writeError(ConnState &conn, ErrorCode code, std::uint64_t request_id,
           const std::string &message,
           std::uint64_t retry_after_micros = 0)
{
    ErrorMsg msg;
    msg.code = static_cast<std::uint32_t>(code);
    msg.requestId = request_id;
    msg.retryAfterMicros = retry_after_micros;
    msg.message = message;
    writeFrame(conn, MsgType::Error, encodeError(msg));
}

} // namespace

struct PredictionServer::Impl
{
    explicit Impl(const ServerOptions &options) : opts(options)
    {
        const unsigned n = std::max(1u, opts.shards);
        shards.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            auto shard = std::make_unique<Shard>();
            shard->index = i;
            if (opts.workers > 1)
                shard->pool =
                    std::make_unique<util::ThreadPool>(opts.workers);
            shards.push_back(std::move(shard));
        }
        // Threads start only after the shard vector is complete: a
        // dispatcher must never observe a half-built sibling list.
        for (auto &shard : shards) {
            Shard *s = shard.get();
            s->dispatcher = std::thread([this, s] { dispatchLoop(*s); });
        }
    }

    // --- streams -------------------------------------------------
    mutable std::mutex streamMu;
    std::vector<std::unique_ptr<Stream>> streams;  //!< id = index + 1.

    Stream *findStream(std::uint32_t id)
    {
        std::lock_guard<std::mutex> lock(streamMu);
        if (id == 0 || id > streams.size())
            return nullptr;
        return streams[id - 1].get();
    }

    Stream *findStream(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(streamMu);
        for (const auto &s : streams) {
            if (s->name == name)
                return s.get();
        }
        return nullptr;
    }

    // --- dispatcher shards ---------------------------------------
    // Each stream's bounded deque (Stream::pending) is guarded by its
    // home shard's mu, which also guards that shard's aggregate
    // counters and stopping flag. Lock order where nesting occurs:
    // streamMu, then a shard mu (telemetry); the hot enqueue/drain
    // paths never nest. The vector itself is immutable after the
    // constructor, so it is read without a lock.
    std::vector<std::unique_ptr<Shard>> shards;
    std::atomic<bool> stopped{false};

    // --- threads & transports ------------------------------------
    ServerOptions opts;
    std::unique_ptr<Listener> listener;
    std::thread acceptThread;
    std::mutex connMu;
    std::vector<std::shared_ptr<ConnState>> conns;

    // --- connection handling -------------------------------------

    void adoptConnection(std::unique_ptr<Connection> connection)
    {
        auto state = std::make_shared<ConnState>();
        state->conn = std::move(connection);
        {
            std::lock_guard<std::mutex> lock(connMu);
            conns.push_back(state);
        }
        state->reader =
            std::thread([this, state] { readerLoop(*state); });
    }

    /**
     * Handle one decoded frame. @return false when the connection
     * should close (protocol violation or Bye). Recoverable,
     * per-request errors (unknown stream/benchmark) answer with a
     * typed Error and keep the connection.
     */
    bool handleFrame(ConnState &conn,
                     const std::shared_ptr<ConnState> &conn_ref,
                     const Frame &frame)
    {
        switch (static_cast<MsgType>(frame.type)) {
          case MsgType::Hello: {
            HelloMsg hello;
            if (!decodeHello(frame.payload, hello)) {
                writeError(conn, ErrorCode::BadFrame, 0,
                           "undecodable Hello");
                return false;
            }
            if (hello.magic != kMagic) {
                writeError(conn, ErrorCode::BadMagic, 0,
                           "not a predvfs client");
                return false;
            }
            if (hello.version != kVersion) {
                writeError(conn, ErrorCode::BadVersion, 0,
                           "server speaks version " +
                               std::to_string(kVersion));
                return false;
            }
            writeFrame(conn, MsgType::HelloOk,
                       encodeHello(HelloMsg{}));
            return true;
          }

          case MsgType::OpenStream: {
            OpenStreamMsg open;
            if (!decodeOpenStream(frame.payload, open)) {
                writeError(conn, ErrorCode::BadFrame, 0,
                           "undecodable OpenStream");
                return false;
            }
            Stream *stream = findStream(open.benchmark);
            if (!stream) {
                writeError(conn, ErrorCode::UnknownBenchmark, 0,
                           "benchmark '" + open.benchmark +
                               "' is not registered");
                return true;
            }
            StreamOpenedMsg opened;
            opened.streamId = stream->id;
            opened.streamKey = stream->streamKey;
            writeFrame(conn, MsgType::StreamOpened,
                       encodeStreamOpened(opened));
            return true;
          }

          case MsgType::Predict: {
            PredictMsg predict;
            if (!decodePredict(frame.payload, predict)) {
                writeError(conn, ErrorCode::BadFrame, 0,
                           "undecodable Predict");
                return false;
            }
            Stream *stream = findStream(predict.streamId);
            if (!stream) {
                writeError(conn, ErrorCode::UnknownStream,
                           predict.requestId,
                           "no stream with id " +
                               std::to_string(predict.streamId));
                return true;
            }
            PendingRequest request;
            request.conn = conn_ref;
            request.stream = stream;
            request.requestId = predict.requestId;
            request.job = std::move(predict.job);
            request.enqueued = Clock::now();
            if (predict.deadlineMicros > 0)
                request.expiry = request.enqueued +
                    std::chrono::microseconds(predict.deadlineMicros);

            // Counted as a request whatever happens next: the
            // telemetry identity (requests == hits + coalesced +
            // simulated + busy + expired) accounts for every accepted
            // Predict, including the ones backpressure turns away.
            {
                std::lock_guard<std::mutex> lock(stream->telem.mu);
                ++stream->telem.requests;
            }

            Shard &shard = *stream->home;
            bool rejected = false;
            {
                std::lock_guard<std::mutex> lock(shard.mu);
                if (shard.stopping) {
                    writeError(conn, ErrorCode::ShuttingDown,
                               predict.requestId, "server stopping");
                    return false;
                }
                if (stream->pending.size() >= opts.queueBound) {
                    rejected = true;
                } else {
                    stream->pending.push_back(std::move(request));
                    stream->peakDepth = std::max(
                        stream->peakDepth, stream->pending.size());
                    ++shard.totalPending;
                    shard.peakPending =
                        std::max(shard.peakPending, shard.totalPending);
                }
            }
            if (rejected) {
                // Backpressure, not failure: the connection stays up
                // and the client is told when a retry is worth it
                // (one accumulation window from now, plus slack).
                {
                    std::lock_guard<std::mutex> lock(
                        stream->telem.mu);
                    ++stream->telem.busy;
                }
                writeError(conn, ErrorCode::Busy, predict.requestId,
                           "stream '" + stream->name +
                               "' queue is full",
                           opts.batchWindowMicros + 100);
                return true;
            }
            shard.cv.notify_one();
            return true;
          }

          case MsgType::Stats: {
            StatsMsg stats;
            if (!decodeStats(frame.payload, stats)) {
                writeError(conn, ErrorCode::BadFrame, 0,
                           "undecodable Stats");
                return false;
            }
            StatsReplyMsg reply;
            reply.json = telemetryJson();
            writeFrame(conn, MsgType::StatsReply,
                       encodeStatsReply(reply));
            return true;
          }

          case MsgType::Bye:
            return false;

          default:
            // Unknown types are survivable: framing is intact, the
            // peer may just be newer. Reply and carry on.
            writeError(conn, ErrorCode::UnknownType, 0,
                       "unknown frame type " +
                           std::to_string(frame.type));
            return true;
        }
    }

    void readerLoop(ConnState &conn)
    {
        // The shared_ptr alias keeps the ConnState alive inside
        // queued requests even after this reader exits.
        std::shared_ptr<ConnState> self;
        {
            std::lock_guard<std::mutex> lock(connMu);
            for (const auto &c : conns) {
                if (c.get() == &conn) {
                    self = c;
                    break;
                }
            }
        }

        FrameDecoder decoder;
        std::uint8_t buffer[4096];
        bool open = true;
        while (open) {
            const std::size_t n =
                conn.conn->read(buffer, sizeof(buffer));
            if (n == 0) {
                // EOF. A mid-frame EOF is a peer that vanished; both
                // cases are a clean close, never an error path.
                break;
            }
            decoder.feed(buffer, n);
            Frame frame;
            std::string error;
            for (;;) {
                const FrameDecoder::Status status =
                    decoder.next(frame, &error);
                if (status == FrameDecoder::Status::NeedMore)
                    break;
                if (status == FrameDecoder::Status::Error) {
                    // Framing is unrecoverable: answer with a typed
                    // error (best effort) and close.
                    writeError(conn,
                               error.find("exceeds") !=
                                       std::string::npos
                                   ? ErrorCode::Oversized
                                   : ErrorCode::BadFrame,
                               0, error);
                    open = false;
                    break;
                }
                if (!handleFrame(conn, self, frame)) {
                    open = false;
                    break;
                }
            }
        }
        conn.conn->close();
    }

    // --- dispatch ------------------------------------------------

    void dispatchLoop(Shard &shard)
    {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(shard.mu);
                shard.cv.wait(lock, [&shard] {
                    return shard.stopping || shard.totalPending > 0;
                });
                if (shard.stopping)
                    break;
                // Accumulation window: wait once for the batch to
                // fill, then take everything that made it.
                if (shard.totalPending < opts.maxBatchJobs &&
                    opts.batchWindowMicros > 0) {
                    shard.cv.wait_for(
                        lock,
                        std::chrono::microseconds(
                            opts.batchWindowMicros),
                        [this, &shard] {
                            return shard.stopping ||
                                shard.totalPending >=
                                    opts.maxBatchJobs;
                        });
                }
            }
            drainShard(shard, /*shutting_down=*/false);
        }

        // Drain on shutdown: pending work is answered with a typed
        // error, not silence (the peer may still be reading). The
        // stopping flag was set under shard.mu, so every enqueue that
        // saw it false strictly precedes this sweep.
        drainShard(shard, /*shutting_down=*/true);
    }

    /** Empty each of the shard's stream queues; answer or simulate
     *  the contents. */
    void drainShard(Shard &shard, bool shutting_down)
    {
        // The stream list is snapshotted under shard.mu (registration
        // appends under the same lock); the pointers stay valid for
        // the server's lifetime.
        std::vector<Stream *> snapshot;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            snapshot = shard.streams;
        }
        bool found_work = false;
        for (Stream *stream : snapshot) {
            std::deque<PendingRequest> taken;
            {
                std::lock_guard<std::mutex> lock(shard.mu);
                taken.swap(stream->pending);
                shard.totalPending -= taken.size();
            }
            if (taken.empty())
                continue;
            found_work = true;
            if (shutting_down) {
                for (PendingRequest &request : taken) {
                    writeError(*request.conn, ErrorCode::ShuttingDown,
                               request.requestId, "server stopping");
                }
                continue;
            }
            processStream(*stream, taken);
        }
        if (found_work) {
            std::lock_guard<std::mutex> lock(shard.mu);
            ++shard.drains;
        }
    }

    void processStream(Stream &stream,
                       std::deque<PendingRequest> &taken)
    {
        // The one and only deadline check: a request that is expired
        // *now*, before its batch exists, is dropped with a typed
        // error; everything that survives into prepare() is answered
        // with values no matter how long simulation takes. Arrival
        // order within the stream is preserved either way.
        const Clock::time_point now = Clock::now();
        std::vector<PendingRequest *> live;
        std::vector<PendingRequest *> expired;
        live.reserve(taken.size());
        for (PendingRequest &request : taken) {
            if (request.expiry < now)
                expired.push_back(&request);
            else
                live.push_back(&request);
        }
        if (!expired.empty()) {
            {
                std::lock_guard<std::mutex> lock(stream.telem.mu);
                stream.telem.expired += expired.size();
            }
            for (PendingRequest *request : expired) {
                writeError(*request->conn, ErrorCode::DeadlineExceeded,
                           request->requestId,
                           "deadline expired while queued");
            }
        }

        // Respect the batch cap even when a burst outran the window:
        // chunked prepare() calls answer in order.
        for (std::size_t begin = 0; begin < live.size();
             begin += opts.maxBatchJobs) {
            const std::size_t end =
                std::min(live.size(), begin + opts.maxBatchJobs);
            runChunk(live, begin, end);
        }
    }

    void runChunk(std::vector<PendingRequest *> &group,
                  std::size_t begin, std::size_t end)
    {
        Stream &stream = *group[begin]->stream;
        std::vector<rtl::JobInput> jobs;
        jobs.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            jobs.push_back(std::move(group[i]->job));

        sim::PrepareStats prep;
        const std::vector<core::PreparedJob> prepared =
            stream.engine->prepare(jobs, stream.flow.predictor.get(),
                                   nullptr, stream.home->pool.get(),
                                   &prep);

        // Counters land before the replies go out: a client that has
        // received every reply of its burst must find the telemetry
        // identity (requests == hits + coalesced + simulated + busy
        // + expired) already holding for those requests. requests
        // itself was counted at accept time, in the reader.
        {
            const Clock::time_point now = Clock::now();
            std::lock_guard<std::mutex> lock(stream.telem.mu);
            stream.telem.cacheHits += prep.cacheHits;
            stream.telem.coalesced += prep.coalesced;
            stream.telem.simulated += prep.simulated;
            stream.telem.batches += 1;
            stream.telem.batchJobs += end - begin;
            for (std::size_t i = begin; i < end; ++i) {
                stream.telem.serviceTimes.push(
                    std::chrono::duration<double, std::micro>(
                        now - group[i]->enqueued)
                        .count());
            }
        }

        for (std::size_t i = begin; i < end; ++i) {
            const core::PreparedJob &record = prepared[i - begin];
            PredictReplyMsg reply;
            reply.requestId = group[i]->requestId;
            reply.cycles = record.cycles;
            reply.energyUnits = record.energyUnits;
            reply.sliceCycles = record.sliceCycles;
            reply.sliceEnergyUnits = record.sliceEnergyUnits;
            reply.predictedCycles = record.predictedCycles;
            writeFrame(*group[i]->conn, MsgType::PredictReply,
                       encodePredictReply(reply));
        }
    }

    // --- telemetry -----------------------------------------------

    StreamTelemetry snapshot(const Stream &stream) const
    {
        StreamTelemetry t;
        t.benchmark = stream.name;
        t.shard = stream.home->index;
        {
            std::lock_guard<std::mutex> lock(stream.home->mu);
            t.peakQueueDepth = stream.peakDepth;
        }
        std::lock_guard<std::mutex> lock(stream.telem.mu);
        t.requests = stream.telem.requests;
        t.cacheHits = stream.telem.cacheHits;
        t.coalesced = stream.telem.coalesced;
        t.simulated = stream.telem.simulated;
        t.busy = stream.telem.busy;
        t.expired = stream.telem.expired;
        t.batches = stream.telem.batches;
        t.batchJobs = stream.telem.batchJobs;
        t.p50ServiceMicros = stream.telem.serviceTimes.percentile(0.50);
        t.p99ServiceMicros = stream.telem.serviceTimes.percentile(0.99);
        return t;
    }

    std::vector<ShardTelemetry> shardTelemetry() const
    {
        std::vector<ShardTelemetry> out;
        out.reserve(shards.size());
        for (const auto &shard : shards) {
            ShardTelemetry t;
            t.index = shard->index;
            std::vector<Stream *> snapshot;
            {
                std::lock_guard<std::mutex> lock(shard->mu);
                snapshot = shard->streams;
                t.peakQueueDepth = shard->peakPending;
                t.drains = shard->drains;
            }
            t.streams = snapshot.size();
            // Counter sums, one stream lock at a time (never nested
            // inside shard->mu): a stream's counters never move
            // between shards, so the per-shard identity is exactly
            // the sum of its streams' identities.
            for (const Stream *stream : snapshot) {
                std::lock_guard<std::mutex> lock(stream->telem.mu);
                t.requests += stream->telem.requests;
                t.cacheHits += stream->telem.cacheHits;
                t.coalesced += stream->telem.coalesced;
                t.simulated += stream->telem.simulated;
                t.busy += stream->telem.busy;
                t.expired += stream->telem.expired;
                t.batches += stream->telem.batches;
                t.batchJobs += stream->telem.batchJobs;
            }
            out.push_back(std::move(t));
        }
        return out;
    }

    std::string telemetryJson() const
    {
        std::size_t depth = 0;
        std::size_t peak = 0;
        for (const auto &shard : shards) {
            std::lock_guard<std::mutex> lock(shard->mu);
            depth += shard->totalPending;
            peak = std::max(peak, shard->peakPending);
        }
        const sim::JobCache::Stats cache =
            sim::JobCache::global().stats();

        std::ostringstream os;
        os.precision(6);
        os << "{\n"
           << "  \"server\": {\n"
           << "    \"workers\": " << opts.workers << ",\n"
           << "    \"shards\": " << shards.size() << ",\n"
           << "    \"max_batch_jobs\": " << opts.maxBatchJobs << ",\n"
           << "    \"batch_window_us\": " << opts.batchWindowMicros
           << ",\n"
           << "    \"queue_bound\": " << opts.queueBound << ",\n"
           << "    \"queue_depth\": " << depth << ",\n"
           << "    \"peak_queue_depth\": " << peak << ",\n"
           << "    \"job_cache\": {\n"
           << "      \"enabled\": "
           << (sim::JobCache::enabledByEnv() ? "true" : "false")
           << ",\n"
           << "      \"hits\": " << cache.hits << ",\n"
           << "      \"misses\": " << cache.misses << ",\n"
           << "      \"entries\": " << cache.entries << ",\n"
           << "      \"bytes\": " << cache.bytes << ",\n"
           << "      \"capacity_bytes\": " << cache.capacityBytes
           << "\n    }\n"
           << "  },\n"
           << "  \"shards\": [\n";
        const std::vector<ShardTelemetry> shard_snaps =
            shardTelemetry();
        for (std::size_t i = 0; i < shard_snaps.size(); ++i) {
            const ShardTelemetry &t = shard_snaps[i];
            os << "    {\n"
               << "      \"index\": " << t.index << ",\n"
               << "      \"streams\": " << t.streams << ",\n"
               << "      \"peak_queue_depth\": " << t.peakQueueDepth
               << ",\n"
               << "      \"drains\": " << t.drains << ",\n"
               << "      \"requests\": " << t.requests << ",\n"
               << "      \"cache_hits\": " << t.cacheHits << ",\n"
               << "      \"coalesced\": " << t.coalesced << ",\n"
               << "      \"simulated\": " << t.simulated << ",\n"
               << "      \"busy\": " << t.busy << ",\n"
               << "      \"expired\": " << t.expired << ",\n"
               << "      \"batches\": " << t.batches << ",\n"
               << "      \"batch_jobs\": " << t.batchJobs << ",\n"
               << "      \"mean_batch_occupancy\": "
               << t.meanBatchOccupancy() << "\n    }"
               << (i + 1 < shard_snaps.size() ? "," : "") << "\n";
        }
        os << "  ],\n"
           << "  \"streams\": [\n";
        std::vector<StreamTelemetry> snaps;
        std::vector<std::uint64_t> keys;
        {
            std::lock_guard<std::mutex> lock(streamMu);
            for (const auto &s : streams) {
                snaps.push_back(snapshot(*s));
                keys.push_back(s->streamKey);
            }
        }
        for (std::size_t i = 0; i < snaps.size(); ++i) {
            const StreamTelemetry &t = snaps[i];
            os << "    {\n"
               << "      \"benchmark\": \"" << t.benchmark << "\",\n"
               << "      \"stream_key\": " << keys[i] << ",\n"
               << "      \"shard\": " << t.shard << ",\n"
               << "      \"requests\": " << t.requests << ",\n"
               << "      \"cache_hits\": " << t.cacheHits << ",\n"
               << "      \"coalesced\": " << t.coalesced << ",\n"
               << "      \"simulated\": " << t.simulated << ",\n"
               << "      \"busy\": " << t.busy << ",\n"
               << "      \"expired\": " << t.expired << ",\n"
               << "      \"peak_queue_depth\": " << t.peakQueueDepth
               << ",\n"
               << "      \"hit_rate\": " << t.hitRate() << ",\n"
               << "      \"batches\": " << t.batches << ",\n"
               << "      \"batch_jobs\": " << t.batchJobs << ",\n"
               << "      \"mean_batch_occupancy\": "
               << t.meanBatchOccupancy() << ",\n"
               << "      \"p50_service_us\": " << t.p50ServiceMicros
               << ",\n"
               << "      \"p99_service_us\": " << t.p99ServiceMicros
               << "\n    }" << (i + 1 < snaps.size() ? "," : "")
               << "\n";
        }
        os << "  ]\n}\n";
        return os.str();
    }

    // --- lifecycle -----------------------------------------------

    void stop()
    {
        if (stopped.exchange(true))
            return;
        for (auto &shard : shards) {
            // Under the shard mutex: an enqueue that saw stopping ==
            // false strictly precedes the dispatcher's final drain
            // sweep, so nothing is left unanswered.
            std::lock_guard<std::mutex> lock(shard->mu);
            shard->stopping = true;
            shard->cv.notify_all();
        }

        if (listener)
            listener->close();
        if (acceptThread.joinable())
            acceptThread.join();

        std::vector<std::shared_ptr<ConnState>> local;
        {
            std::lock_guard<std::mutex> lock(connMu);
            local = conns;
        }
        for (const auto &conn : local)
            conn->conn->close();
        for (const auto &conn : local) {
            if (conn->reader.joinable())
                conn->reader.join();
        }
        for (auto &shard : shards) {
            if (shard->dispatcher.joinable())
                shard->dispatcher.join();
        }

        // Everything is quiesced; leave a warm start behind. Failures
        // warn inside saveSnapshotFile — a full disk must not turn a
        // clean drain into a crash.
        if (!opts.snapshotPath.empty() &&
            sim::JobCache::global().saveSnapshotFile(
                opts.snapshotPath)) {
            util::inform("serve: cache snapshot flushed to '",
                         opts.snapshotPath, "'");
        }
    }
};

PredictionServer::PredictionServer(ServerOptions options)
    : opts(options), impl(std::make_unique<Impl>(options))
{
}

PredictionServer::~PredictionServer()
{
    stop();
}

std::uint32_t
PredictionServer::registerBenchmark(const std::string &name)
{
    if (Stream *existing = impl->findStream(name))
        return existing->id;

    // The offline flow (training + slicing) runs outside any lock —
    // it can take seconds, and the server must keep serving existing
    // streams meanwhile.
    auto stream = std::make_unique<Stream>();
    stream->name = name;
    stream->accel = accel::makeAccelerator(name);

    const double f0 = stream->accel->nominalFrequencyHz();
    const sim::ExperimentOptions &eopts = opts.experiment;
    if (eopts.platform == sim::Platform::Asic) {
        stream->vf = std::make_unique<power::VfModel>(
            power::VfModel::asic65nm(f0));
        stream->table = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::asic(*stream->vf,
                                             /*with_boost=*/true));
    } else {
        stream->vf = std::make_unique<power::VfModel>(
            power::VfModel::fpga28nm(f0));
        stream->table = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::fpga(*stream->vf,
                                             /*with_boost=*/true));
    }

    sim::EngineConfig engine_config;
    engine_config.deadlineSeconds = eopts.deadlineSeconds;
    engine_config.switchTimeSeconds = eopts.switchTimeSeconds;
    stream->engine = std::make_unique<sim::SimulationEngine>(
        *stream->accel, *stream->table, engine_config,
        sim::platformEnergyParams(stream->accel->energyParams(),
                                  eopts.platform));

    const workload::BenchmarkWorkload work =
        workload::makeWorkload(*stream->accel, eopts.seed);
    core::FlowConfig flow_config = eopts.flowConfig;
    flow_config.sliceOptions = eopts.sliceOptions;
    stream->flow = core::buildPredictor(stream->accel->design(),
                                        work.train, flow_config);
    stream->streamKey =
        stream->engine->streamKey(stream->flow.predictor.get());
    // Fingerprint-hash shard assignment: stable for the same design +
    // predictor across restarts and across server processes, which is
    // what lets N processes split the fingerprint space later.
    stream->home = impl->shards[stream->streamKey %
                                impl->shards.size()].get();

    std::lock_guard<std::mutex> lock(impl->streamMu);
    // Double-registration race: a concurrent caller may have beaten
    // us; the first registration wins and this one is dropped.
    for (const auto &s : impl->streams) {
        if (s->name == name)
            return s->id;
    }
    stream->id =
        static_cast<std::uint32_t>(impl->streams.size() + 1);
    Stream *raw = stream.get();
    impl->streams.push_back(std::move(stream));
    {
        // Publish to the dispatcher only once the stream is complete;
        // the shard lock pairs with drainShard's snapshot.
        std::lock_guard<std::mutex> shard_lock(raw->home->mu);
        raw->home->streams.push_back(raw);
    }
    util::inform("serve: registered '", name, "' as stream ", raw->id,
                 " (key ", raw->streamKey, ", shard ",
                 raw->home->index, ")");
    return raw->id;
}

std::unique_ptr<Connection>
PredictionServer::connectLoopback()
{
    auto [client, server] = makeLoopbackPair();
    impl->adoptConnection(std::move(server));
    return std::move(client);
}

void
PredictionServer::listenUnix(const std::string &path)
{
    listen(path);
}

std::string
PredictionServer::listen(const std::string &address)
{
    util::fatalIf(impl->listener != nullptr,
                  "PredictionServer: already listening on ",
                  impl->listener ? impl->listener->address() : "");
    impl->listener = makeListener(address);
    impl->acceptThread = std::thread([this] {
        while (auto conn = impl->listener->accept())
            impl->adoptConnection(std::move(conn));
    });
    return impl->listener->address();
}

void
PredictionServer::stop()
{
    impl->stop();
}

std::vector<std::string>
PredictionServer::streamNames() const
{
    std::vector<std::string> names;
    std::lock_guard<std::mutex> lock(impl->streamMu);
    for (const auto &s : impl->streams)
        names.push_back(s->name);
    return names;
}

StreamTelemetry
PredictionServer::telemetry(const std::string &benchmark) const
{
    const Stream *stream = impl->findStream(benchmark);
    util::fatalIf(!stream, "PredictionServer: no stream '", benchmark,
                  "'");
    return impl->snapshot(*stream);
}

std::uint64_t
PredictionServer::streamKeyOf(const std::string &benchmark) const
{
    const Stream *stream = impl->findStream(benchmark);
    util::fatalIf(!stream, "PredictionServer: no stream '", benchmark,
                  "'");
    return stream->streamKey;
}

std::size_t
PredictionServer::maxQueueDepth() const
{
    std::size_t peak = 0;
    for (const auto &shard : impl->shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        peak = std::max(peak, shard->peakPending);
    }
    return peak;
}

std::vector<ShardTelemetry>
PredictionServer::shardTelemetry() const
{
    return impl->shardTelemetry();
}

std::string
PredictionServer::telemetryJson() const
{
    return impl->telemetryJson();
}

bool
PredictionServer::saveSnapshot(const std::string &path) const
{
    return sim::JobCache::global().saveSnapshotFile(path);
}

sim::JobCache::SnapshotLoadStats
PredictionServer::loadSnapshot(const std::string &path)
{
    // Only entries for streams this server actually serves: a
    // snapshot written against other designs or retrained predictors
    // carries stream keys no registered benchmark produces, and those
    // entries are rejected rather than trusted.
    std::unordered_set<std::uint64_t> accept;
    {
        std::lock_guard<std::mutex> lock(impl->streamMu);
        for (const auto &s : impl->streams)
            accept.insert(s->streamKey);
    }
    const sim::JobCache::SnapshotLoadStats stats =
        sim::JobCache::global().loadSnapshotFile(path, &accept);
    if (stats.loaded > 0 || stats.rejected > 0) {
        util::inform("serve: snapshot '", path, "': loaded ",
                     stats.loaded, " entries, rejected ",
                     stats.rejected,
                     stats.tornTail ? " (torn tail)" : "");
    }
    return stats;
}

} // namespace serve
} // namespace predvfs
