#include "serve/golden.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "accel/registry.hh"
#include "core/predictive_controller.hh"
#include "sim/job_cache.hh"
#include "util/logging.hh"
#include "workload/suite.hh"

namespace predvfs {
namespace serve {

namespace {

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

/** Chain one reply's value fields into the running digest. */
std::uint64_t
digestReply(std::uint64_t seed, const PredictReplyMsg &reply)
{
    const std::uint64_t words[5] = {
        reply.cycles,
        doubleBits(reply.energyUnits),
        reply.sliceCycles,
        doubleBits(reply.sliceEnergyUnits),
        doubleBits(reply.predictedCycles),
    };
    return sim::JobCache::hashBytes(words, sizeof(words), seed);
}

void
printMetrics(std::ostream &os, const char *name,
             const sim::RunMetrics &m)
{
    os << name << ' ' << m.jobs << ' ' << m.misses << ' '
       << m.switches << ' ' << std::hexfloat << m.execEnergyJoules
       << ' ' << m.overheadEnergyJoules << ' ' << m.execSeconds << ' '
       << m.overheadSeconds << std::defaultfloat << '\n';
}

sim::RunMetrics
readMetrics(std::istream &in, const std::string &expect_tag)
{
    std::string tag;
    sim::RunMetrics m;
    std::string fields[4];
    in >> tag >> m.jobs >> m.misses >> m.switches >> fields[0] >>
        fields[1] >> fields[2] >> fields[3];
    util::fatalIf(!in || tag != expect_tag,
                  "golden: expected a '", expect_tag, "' line");
    // operator>> on double rejects hexfloat; strtod accepts it.
    double *out[4] = {&m.execEnergyJoules, &m.overheadEnergyJoules,
                      &m.execSeconds, &m.overheadSeconds};
    for (int i = 0; i < 4; ++i) {
        char *end = nullptr;
        *out[i] = std::strtod(fields[i].c_str(), &end);
        util::fatalIf(!end || *end != '\0',
                      "golden: bad double '", fields[i], "' in ",
                      expect_tag, " line");
    }
    return m;
}

bool
metricsEqual(const sim::RunMetrics &a, const sim::RunMetrics &b)
{
    return a.jobs == b.jobs && a.misses == b.misses &&
        a.switches == b.switches &&
        doubleBits(a.execEnergyJoules) ==
            doubleBits(b.execEnergyJoules) &&
        doubleBits(a.overheadEnergyJoules) ==
            doubleBits(b.overheadEnergyJoules) &&
        doubleBits(a.execSeconds) == doubleBits(b.execSeconds) &&
        doubleBits(a.overheadSeconds) == doubleBits(b.overheadSeconds);
}

} // namespace

bool
operator==(const GoldenReport &a, const GoldenReport &b)
{
    return a.benchmark == b.benchmark && a.streamKey == b.streamKey &&
        a.jobs == b.jobs && a.responseDigest == b.responseDigest &&
        metricsEqual(a.baseline, b.baseline) &&
        metricsEqual(a.prediction, b.prediction);
}

std::string
formatGoldenReport(const GoldenReport &report)
{
    std::ostringstream os;
    os << "predvfs-serve-golden v1\n"
       << "benchmark " << report.benchmark << '\n'
       << "stream_key " << report.streamKey << '\n'
       << "jobs " << report.jobs << '\n'
       << "response_digest " << report.responseDigest << '\n';
    printMetrics(os, "baseline", report.baseline);
    printMetrics(os, "prediction", report.prediction);
    return os.str();
}

GoldenReport
parseGoldenReport(std::istream &in)
{
    std::string header;
    std::getline(in, header);
    util::fatalIf(header != "predvfs-serve-golden v1",
                  "golden: bad header '", header, "'");

    GoldenReport report;
    std::string tag;
    in >> tag >> report.benchmark;
    util::fatalIf(!in || tag != "benchmark",
                  "golden: expected a 'benchmark' line");
    in >> tag >> report.streamKey;
    util::fatalIf(!in || tag != "stream_key",
                  "golden: expected a 'stream_key' line");
    in >> tag >> report.jobs;
    util::fatalIf(!in || tag != "jobs",
                  "golden: expected a 'jobs' line");
    in >> tag >> report.responseDigest;
    util::fatalIf(!in || tag != "response_digest",
                  "golden: expected a 'response_digest' line");
    report.baseline = readMetrics(in, "baseline");
    report.prediction = readMetrics(in, "prediction");
    return report;
}

GoldenReport
loadGoldenReport(const std::string &path)
{
    std::ifstream in(path);
    util::fatalIf(!in, "golden: cannot read ", path);
    return parseGoldenReport(in);
}

GoldenReport
buildGoldenReport(PredictionClient &client, std::uint32_t stream_id,
                  const std::string &benchmark,
                  const sim::ExperimentOptions &options)
{
    // Reconstruct the replay side locally — accelerator, operating
    // points, engine — exactly as the server builds its stream; the
    // *records* still come from the wire, so any server-side
    // divergence shows up in the digest and the metrics alike.
    const std::shared_ptr<const accel::Accelerator> accel =
        accel::makeAccelerator(benchmark);
    const double f0 = accel->nominalFrequencyHz();

    std::unique_ptr<power::VfModel> vf;
    std::unique_ptr<power::OperatingPointTable> table;
    if (options.platform == sim::Platform::Asic) {
        vf = std::make_unique<power::VfModel>(
            power::VfModel::asic65nm(f0));
        table = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::asic(*vf, /*with_boost=*/true));
    } else {
        vf = std::make_unique<power::VfModel>(
            power::VfModel::fpga28nm(f0));
        table = std::make_unique<power::OperatingPointTable>(
            power::OperatingPointTable::fpga(*vf, /*with_boost=*/true));
    }

    sim::EngineConfig engine_config;
    engine_config.deadlineSeconds = options.deadlineSeconds;
    engine_config.switchTimeSeconds = options.switchTimeSeconds;
    const sim::SimulationEngine engine(
        *accel, *table, engine_config,
        sim::platformEnergyParams(accel->energyParams(),
                                  options.platform));

    const workload::BenchmarkWorkload work =
        workload::makeWorkload(*accel, options.seed);

    const std::vector<PredictReplyMsg> replies =
        client.predictMany(stream_id, work.test);

    GoldenReport report;
    report.benchmark = benchmark;
    report.streamKey = client.streamKey(stream_id);
    report.jobs = replies.size();
    std::uint64_t digest = 0;
    std::vector<core::PreparedJob> records;
    records.reserve(replies.size());
    for (std::size_t i = 0; i < replies.size(); ++i) {
        const PredictReplyMsg &reply = replies[i];
        digest = digestReply(digest, reply);
        core::PreparedJob record;
        record.input = &work.test[i];
        record.cycles = reply.cycles;
        record.energyUnits = reply.energyUnits;
        record.sliceCycles = reply.sliceCycles;
        record.sliceEnergyUnits = reply.sliceEnergyUnits;
        record.predictedCycles = reply.predictedCycles;
        records.push_back(record);
    }
    report.responseDigest = digest;

    core::ConstantController baseline(table->nominalIndex());
    report.baseline = engine.run(baseline, records);

    core::DvfsModelConfig dvfs;
    dvfs.deadlineSeconds = options.deadlineSeconds;
    dvfs.switchTimeSeconds = options.switchTimeSeconds;
    dvfs.marginFraction = options.predictionMargin;
    core::PredictiveController prediction(*table, f0, dvfs);
    report.prediction = engine.run(prediction, records);

    return report;
}

} // namespace serve
} // namespace predvfs
